"""Chaos tests: the GHS family and Co-NNT under the fault plane.

The acceptance bar (ISSUE 3): at drop rate p = 0.2 on seeded instances
the recovering protocols still terminate with the *exact* MST of the
surviving topology, with the state auditor asserting fragment-invariant
safety at every recovery settle point (``audit=True``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.connt import run_connt
from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_ghs, run_modified_ghs
from repro.errors import ProtocolError
from repro.experiments.instances import get_points
from repro.mst.kruskal import kruskal_mst
from repro.mst.quality import same_tree, verify_spanning_tree
from repro.rgg.build import build_rgg
from repro.sim.faults import FaultPlan

DROP = FaultPlan(seed=0, drop_rate=0.2)


def surviving_mst(points: np.ndarray, radius: float, dead=()) -> np.ndarray:
    """Reference MST (forest) of the RGG at ``radius`` minus dead nodes."""
    g = build_rgg(points, radius)
    if dead:
        dead = set(dead)
        keep = [
            i
            for i, (u, v) in enumerate(np.asarray(g.edges))
            if u not in dead and v not in dead
        ]
        return kruskal_mst(g.n, g.edges[keep], g.lengths[keep])[0]
    return kruskal_mst(g.n, g.edges, g.lengths)[0]


class TestMGHSUnderDrops:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_exact_mst_n500(self, seed):
        pts = get_points(500, seed)
        base = run_modified_ghs(pts)
        res = run_modified_ghs(pts, faults=DROP, audit=True)
        assert same_tree(res.tree_edges, base.tree_edges)

    def test_exact_mst_n2000(self):
        pts = get_points(2000, 0)
        base = run_modified_ghs(pts)
        res = run_modified_ghs(pts, faults=DROP, audit=True)
        assert same_tree(res.tree_edges, base.tree_edges)

    def test_exact_mst_without_planes(self):
        pts = get_points(300, 1)
        base = run_modified_ghs(pts)
        res = run_modified_ghs(pts, faults=DROP, audit=True, planes=False)
        assert same_tree(res.tree_edges, base.tree_edges)

    def test_exact_mst_with_duplicates_and_link_loss(self):
        pts = get_points(300, 2)
        base = run_modified_ghs(pts)
        plan = FaultPlan(
            seed=1, drop_rate=0.15, dup_rate=0.1, link_loss={(0, 1): 0.9}
        )
        res = run_modified_ghs(pts, faults=plan, audit=True)
        assert same_tree(res.tree_edges, base.tree_edges)

    def test_original_ghs_recovers_too(self):
        pts = get_points(300, 0)
        base = run_ghs(pts)
        res = run_ghs(pts, faults=DROP, audit=True)
        assert same_tree(res.tree_edges, base.tree_edges)

    def test_recover_false_keeps_unreliable_protocol(self):
        # Opting out of recovery must not silently mask faults: the run
        # either fails loudly or (rarely) squeaks through; it must never
        # return a wrong tree silently.  We only pin the no-hang part.
        pts = get_points(200, 0)
        try:
            res = run_modified_ghs(pts, faults=DROP, recover=False)
        except ProtocolError:
            return
        verify_spanning_tree(len(pts), res.tree_edges, forest_ok=True)


class TestMGHSUnderCrashes:
    def test_transient_crashes_exact_mst(self):
        pts = get_points(500, 0)
        base = run_modified_ghs(pts)
        plan = FaultPlan(
            seed=2, drop_rate=0.1, crashes=((10, 5, 80), (200, 50, 300))
        )
        res = run_modified_ghs(pts, faults=plan, audit=True)
        assert same_tree(res.tree_edges, base.tree_edges)

    def test_crash_from_round_zero_yields_survivor_mst(self):
        pts = get_points(300, 0)
        base = run_modified_ghs(pts)
        dead = 17
        plan = FaultPlan(seed=0, drop_rate=0.1, crashes=((dead, 0, None),))
        res = run_modified_ghs(pts, faults=plan, audit=True)
        r = base.extras["radius"]
        assert same_tree(res.tree_edges, surviving_mst(pts, r, dead=(dead,)))
        assert not any(dead in edge for edge in np.asarray(res.tree_edges))


class TestEOPTUnderFaults:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_exact_mst_n500(self, seed):
        pts = get_points(500, seed)
        base = run_eopt(pts)
        res = run_eopt(pts, faults=DROP, audit=True)
        assert same_tree(res.tree_edges, base.tree_edges)

    def test_exact_mst_n2000(self):
        pts = get_points(2000, 0)
        base = run_eopt(pts)
        res = run_eopt(pts, faults=DROP, audit=True)
        assert same_tree(res.tree_edges, base.tree_edges)

    def test_transient_crashes_exact_mst(self):
        pts = get_points(300, 3)
        base = run_eopt(pts)
        plan = FaultPlan(
            seed=5, drop_rate=0.1, crashes=((10, 5, 80), (200, 50, 300))
        )
        res = run_eopt(pts, faults=plan, audit=True)
        assert same_tree(res.tree_edges, base.tree_edges)

    def test_determinism(self):
        pts = get_points(300, 7)
        a = run_eopt(pts, faults=DROP)
        b = run_eopt(pts, faults=DROP)
        assert same_tree(a.tree_edges, b.tree_edges)
        assert a.stats.energy_total == b.stats.energy_total
        assert a.stats.drops_by_kind == b.stats.drops_by_kind


class TestCoNNTUnderFaults:
    def test_terminates_and_connects_at_p02(self):
        pts = get_points(400, 0)
        res = run_connt(pts, faults=DROP)
        # Exactly the top-ranked node may stay unconnected.
        assert len(res.extras["unconnected_nodes"]) == 1
        assert len(np.asarray(res.tree_edges)) == len(pts) - 1
        verify_spanning_tree(len(pts), res.tree_edges, forest_ok=True)

    def test_crash_windows_terminate(self):
        pts = get_points(400, 1)
        plan = FaultPlan(
            seed=3, drop_rate=0.1, crashes=((5, 2, 40), (17, 0, None))
        )
        res = run_connt(pts, faults=plan)
        assert not any(17 in edge for edge in np.asarray(res.tree_edges))
        # Survivors all connect except the top-ranked one.
        assert len(np.asarray(res.tree_edges)) == len(pts) - 2


class TestFaultStats:
    def test_fault_breakdown_recorded(self):
        pts = get_points(300, 0)
        res = run_modified_ghs(
            pts, faults=FaultPlan(seed=0, drop_rate=0.2, dup_rate=0.1)
        )
        st = res.stats
        assert st.dropped_total > 0
        assert st.dup_delivered_total > 0
        assert st.crash_dropped_total == 0
        assert "HELLO" in st.drops_by_kind
        rows = dict((k, (d, c, u)) for k, d, c, u in st.fault_table())
        assert rows["HELLO"][0] == st.drops_by_kind["HELLO"]

    def test_faults_off_bit_identical(self):
        # A null plan and no plan must not perturb a single stat.
        pts = get_points(300, 0)
        a = run_modified_ghs(pts)
        b = run_modified_ghs(pts, faults=FaultPlan())
        assert same_tree(a.tree_edges, b.tree_edges)
        assert a.stats.energy_total == b.stats.energy_total
        assert a.stats.messages_total == b.stats.messages_total
        assert a.stats.rounds == b.stats.rounds
