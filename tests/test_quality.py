"""Tests for tree verification and cost metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CycleError, GraphError, NotSpanningError
from repro.geometry.points import uniform_points
from repro.mst.delaunay import euclidean_mst
from repro.mst.quality import (
    approximation_ratio,
    same_tree,
    tree_cost,
    verify_spanning_tree,
)


class TestVerify:
    def test_accepts_valid_tree(self):
        verify_spanning_tree(3, np.array([[0, 1], [1, 2]]))

    def test_rejects_cycle(self):
        with pytest.raises(CycleError):
            verify_spanning_tree(3, np.array([[0, 1], [1, 2], [0, 2]]))

    def test_rejects_duplicate_edge(self):
        with pytest.raises(CycleError):
            verify_spanning_tree(3, np.array([[0, 1], [0, 1], [1, 2]]))

    def test_rejects_disconnected(self):
        with pytest.raises(NotSpanningError):
            verify_spanning_tree(4, np.array([[0, 1], [2, 3]]))

    def test_forest_ok_flag(self):
        verify_spanning_tree(4, np.array([[0, 1], [2, 3]]), forest_ok=True)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            verify_spanning_tree(2, np.array([[0, 0]]), forest_ok=True)

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            verify_spanning_tree(2, np.array([[0, 2]]))

    def test_empty_tree_single_node(self):
        verify_spanning_tree(1, np.zeros((0, 2)))

    def test_empty_tree_multi_node_fails(self):
        with pytest.raises(NotSpanningError):
            verify_spanning_tree(2, np.zeros((0, 2)))


class TestTreeCost:
    def test_unit_edge(self):
        pts = np.array([[0, 0], [1, 0.0]])
        assert tree_cost(pts, np.array([[0, 1]]), 1.0) == 1.0
        assert tree_cost(pts, np.array([[0, 1]]), 2.0) == 1.0

    def test_alpha_scaling(self):
        pts = np.array([[0, 0], [0.5, 0.0]])
        e = np.array([[0, 1]])
        assert tree_cost(pts, e, 2.0) == pytest.approx(0.25)
        assert tree_cost(pts, e, 3.0) == pytest.approx(0.125)

    def test_empty(self):
        assert tree_cost(uniform_points(5), np.zeros((0, 2))) == 0.0

    def test_bad_alpha(self):
        with pytest.raises(GraphError):
            tree_cost(uniform_points(5), np.array([[0, 1]]), alpha=0.0)

    def test_additive(self):
        pts = uniform_points(30, seed=0)
        e, _ = euclidean_mst(pts)
        total = tree_cost(pts, e)
        assert total == pytest.approx(
            tree_cost(pts, e[:10]) + tree_cost(pts, e[10:])
        )


class TestApproximationRatio:
    def test_mst_against_itself(self):
        pts = uniform_points(50, seed=1)
        e, _ = euclidean_mst(pts)
        assert approximation_ratio(pts, e, e) == 1.0

    def test_worse_tree_above_one(self):
        pts = np.array([[0, 0], [0.1, 0], [1.0, 0]])
        opt = np.array([[0, 1], [1, 2]])
        bad = np.array([[0, 2], [0, 1]])
        assert approximation_ratio(pts, bad, opt) > 1.0

    def test_zero_optimum(self):
        pts = np.array([[0.5, 0.5]])
        assert approximation_ratio(pts, np.zeros((0, 2)), np.zeros((0, 2))) == 1.0


class TestSameTree:
    def test_equal_sets(self):
        a = np.array([[0, 1], [1, 2]])
        b = np.array([[2, 1], [1, 0]])  # reversed rows and order
        assert same_tree(a, b)

    def test_different_sets(self):
        assert not same_tree(np.array([[0, 1]]), np.array([[0, 2]]))

    def test_different_sizes(self):
        assert not same_tree(np.array([[0, 1]]), np.zeros((0, 2)))

    def test_empty_equal(self):
        assert same_tree(np.zeros((0, 2)), np.zeros((0, 2)))
