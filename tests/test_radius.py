"""Tests for the radius laws."""

from __future__ import annotations

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.radius import (
    PAPER_EOPT_STEP1_CONST,
    PAPER_GHS_RADIUS_CONST,
    connectivity_radius,
    giant_radius,
)


class TestConnectivityRadius:
    def test_formula(self):
        n = 1000
        assert connectivity_radius(n, 1.6) == pytest.approx(
            1.6 * math.sqrt(math.log(n) / n)
        )

    def test_defaults_to_paper_constant(self):
        assert PAPER_GHS_RADIUS_CONST == 1.6
        assert connectivity_radius(500) == connectivity_radius(500, 1.6)

    def test_degenerate_n(self):
        assert connectivity_radius(0) == math.sqrt(2)
        assert connectivity_radius(1) == math.sqrt(2)

    def test_capped_at_diameter(self):
        assert connectivity_radius(2, c=100.0) == math.sqrt(2)

    def test_decreasing_in_n(self):
        rs = [connectivity_radius(n) for n in (100, 1000, 10000)]
        assert rs[0] > rs[1] > rs[2]

    def test_validation(self):
        with pytest.raises(GeometryError):
            connectivity_radius(-1)
        with pytest.raises(GeometryError):
            connectivity_radius(10, c=0)


class TestGiantRadius:
    def test_formula(self):
        assert giant_radius(400, 1.4) == pytest.approx(1.4 / 20.0)

    def test_defaults_to_paper_constant(self):
        assert PAPER_EOPT_STEP1_CONST == 1.4

    def test_below_connectivity_radius_for_large_n(self):
        """r1 < r2 exactly when c1 < c2 sqrt(log n): holds from small n on."""
        for n in (50, 500, 5000):
            assert giant_radius(n) < connectivity_radius(n)

    def test_validation(self):
        with pytest.raises(GeometryError):
            giant_radius(-2)
        with pytest.raises(GeometryError):
            giant_radius(10, c=-1)

    def test_zero_n(self):
        assert giant_radius(0) == math.sqrt(2)
