"""Tests for connectivity thresholds and k-NN distances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.points import uniform_points
from repro.geometry.radius import connectivity_radius
from repro.rgg.build import build_rgg
from repro.rgg.components import is_connected
from repro.rgg.connectivity import (
    connectivity_probability,
    critical_connectivity_radius,
    kth_nearest_distances,
)


class TestCriticalRadius:
    def test_equals_longest_mst_edge(self):
        from repro.mst.delaunay import euclidean_mst

        pts = uniform_points(100, seed=0)
        rc = critical_connectivity_radius(pts)
        _, lengths = euclidean_mst(pts)
        assert rc == pytest.approx(lengths.max())

    def test_threshold_behaviour(self):
        """Just below rc: disconnected; just above: connected.

        (A hair of slack on each side — the MST edge length and the
        KD-tree's range comparison evaluate the same distance through
        different float expressions, so exact equality is one ulp fuzzy.)
        """
        pts = uniform_points(120, seed=1)
        rc = critical_connectivity_radius(pts)
        assert is_connected(build_rgg(pts, rc * (1 + 1e-9)))
        assert not is_connected(build_rgg(pts, rc * 0.999))

    def test_trivial_inputs(self):
        assert critical_connectivity_radius(np.zeros((0, 2))) == 0.0
        assert critical_connectivity_radius(np.array([[0.5, 0.5]])) == 0.0

    def test_paper_constant_exceeds_threshold(self):
        """The paper's 1.6 sqrt(ln n / n) connects typical instances."""
        for seed in range(5):
            pts = uniform_points(400, seed=seed)
            assert critical_connectivity_radius(pts) < connectivity_radius(400)


class TestConnectivityProbability:
    def test_extremes(self):
        assert connectivity_probability(30, 2.0, trials=5) == 1.0
        assert connectivity_probability(30, 0.0, trials=5) == 0.0

    def test_monotone_in_radius(self):
        lo = connectivity_probability(100, 0.08, trials=10)
        hi = connectivity_probability(100, 0.25, trials=10)
        assert hi >= lo

    def test_validation(self):
        with pytest.raises(GeometryError):
            connectivity_probability(10, 0.5, trials=0)


class TestKthNearest:
    def test_monotone_in_k(self):
        pts = uniform_points(200, seed=0)
        d1 = kth_nearest_distances(pts, 1)
        d5 = kth_nearest_distances(pts, 5)
        assert (d5 >= d1).all()

    def test_lemma_4_1_scale(self):
        """k-NN distance^2 concentrates around k/(pi n): the geometric core
        of the paper's energy lower bound."""
        n, k = 4000, 8
        pts = uniform_points(n, seed=1)
        d2 = kth_nearest_distances(pts, k) ** 2
        ratio = np.median(d2) / (k / (np.pi * n))
        assert 0.5 < ratio < 2.0

    def test_validation(self):
        pts = uniform_points(10, seed=0)
        with pytest.raises(GeometryError):
            kth_nearest_distances(pts, 0)
        with pytest.raises(GeometryError):
            kth_nearest_distances(pts, 10)
