"""Tests for RGG construction and component analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError, GraphError
from repro.geometry.points import uniform_points
from repro.rgg.build import build_rgg, complete_graph
from repro.rgg.components import (
    component_labels,
    component_sizes,
    connected_components,
    giant_component,
    is_connected,
)


class TestBuild:
    def test_edges_within_radius_only(self):
        pts = uniform_points(100, seed=0)
        g = build_rgg(pts, 0.15)
        assert (g.lengths <= 0.15 + 1e-12).all()

    def test_matches_brute_force(self):
        pts = uniform_points(60, seed=1)
        r = 0.2
        g = build_rgg(pts, r)
        expected = set()
        for i in range(60):
            for j in range(i + 1, 60):
                if np.hypot(*(pts[i] - pts[j])) <= r:
                    expected.add((i, j))
        got = set(map(tuple, g.edges))
        assert got == expected

    def test_csr_consistent_with_edges(self):
        pts = uniform_points(80, seed=2)
        g = build_rgg(pts, 0.18)
        # Degree sum = 2m and neighbour lists match the edge list.
        assert int(g.degrees().sum()) == 2 * g.m
        adj = {i: set() for i in range(g.n)}
        for u, v in g.edges:
            adj[int(u)].add(int(v))
            adj[int(v)].add(int(u))
        for u in range(g.n):
            assert set(map(int, g.neighbors(u))) == adj[u]

    def test_neighbors_sorted(self):
        g = build_rgg(uniform_points(50, seed=3), 0.3)
        for u in range(g.n):
            nb = g.neighbors(u)
            assert (np.diff(nb) > 0).all()

    def test_zero_radius(self):
        g = build_rgg(uniform_points(10, seed=0), 0.0)
        assert g.m == 0

    def test_empty_points(self):
        g = build_rgg(np.zeros((0, 2)), 0.5)
        assert g.n == 0 and g.m == 0

    def test_single_point(self):
        g = build_rgg(np.array([[0.5, 0.5]]), 0.5)
        assert g.n == 1 and g.m == 0
        assert g.degree(0) == 0

    def test_validation(self):
        with pytest.raises(GeometryError):
            build_rgg(np.zeros((3, 3)), 0.5)
        with pytest.raises(GeometryError):
            build_rgg(np.zeros((3, 2)), -0.1)
        g = build_rgg(uniform_points(5), 0.5)
        with pytest.raises(GraphError):
            g.neighbors(7)
        with pytest.raises(GraphError):
            g.degree(-1)

    def test_distance_method(self):
        pts = np.array([[0.0, 0.0], [0.3, 0.4]])
        g = build_rgg(pts, 1.0)
        assert g.distance(0, 1) == pytest.approx(0.5)

    def test_subgraph_radius(self):
        pts = uniform_points(100, seed=4)
        g = build_rgg(pts, 0.3)
        sub = g.subgraph_radius(0.1)
        direct = build_rgg(pts, 0.1)
        assert set(map(tuple, sub.edges)) == set(map(tuple, direct.edges))

    def test_to_networkx(self):
        g = build_rgg(uniform_points(30, seed=5), 0.3)
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 30
        assert nxg.number_of_edges() == g.m

    def test_complete_graph(self):
        g = complete_graph(uniform_points(20, seed=6))
        assert g.m == 20 * 19 // 2

    @given(st.integers(0, 2**31 - 1), st.floats(0.05, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_radius(self, seed, r):
        pts = uniform_points(40, seed=seed)
        g_small = build_rgg(pts, r / 2)
        g_big = build_rgg(pts, r)
        small = set(map(tuple, g_small.edges))
        big = set(map(tuple, g_big.edges))
        assert small <= big


class TestComponents:
    def test_connected_when_radius_large(self):
        g = build_rgg(uniform_points(50, seed=0), 2.0)
        assert is_connected(g)
        assert len(connected_components(g)) == 1

    def test_isolated_when_radius_zero(self):
        g = build_rgg(uniform_points(30, seed=0), 0.0)
        assert not is_connected(g)
        assert len(connected_components(g)) == 30

    def test_matches_networkx(self):
        import networkx as nx

        pts = uniform_points(150, seed=1)
        g = build_rgg(pts, 0.07)
        ours = sorted(map(len, connected_components(g)), reverse=True)
        theirs = sorted(
            (len(c) for c in nx.connected_components(g.to_networkx())), reverse=True
        )
        assert ours == theirs

    def test_component_sizes_descending(self):
        g = build_rgg(uniform_points(200, seed=2), 0.05)
        sizes = component_sizes(g)
        assert (np.diff(sizes) <= 0).all()
        assert sizes.sum() == 200

    def test_labels_partition(self):
        g = build_rgg(uniform_points(100, seed=3), 0.08)
        labels = component_labels(g)
        for u, v in g.edges:
            assert labels[u] == labels[v]

    def test_giant_component_is_largest(self):
        g = build_rgg(uniform_points(300, seed=4), 0.06)
        giant = giant_component(g)
        assert len(giant) == component_sizes(g)[0]

    def test_empty_graph(self):
        g = build_rgg(np.zeros((0, 2)), 0.5)
        assert is_connected(g)
        assert component_sizes(g).shape == (0,)
        assert giant_component(g).shape == (0,)

    def test_single_node_connected(self):
        g = build_rgg(np.array([[0.5, 0.5]]), 0.1)
        assert is_connected(g)
