"""Turbo backend unit tests: batch semantics, chunked CSR, registry.

The end-to-end observational contract lives in
``tests/test_hotpath_equivalence.py`` (parametrized over every registered
backend).  This module pins the turbo-specific mechanisms in isolation:

* vectorized fault masking — ``unicast_batch`` under a seeded
  :class:`FaultPlan` must reproduce the fast kernel's per-message fates,
  delivery order (duplicates adjacent), tallies and charges exactly;
* chunked / memory-mapped CSR builds round-trip bit-identically to the
  dense builder, and the instance cache keys on the layout;
* the whole-round phase engine engages on eligible runs (and only then);
* the kernel registry resolves modes, layouts and unknown-name errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError, GraphError
from repro.geometry.points import uniform_points
from repro.perf import PEAK_RSS_COUNTER, perf
from repro.rgg import build_rgg, build_rgg_chunked, build_rgg_layout
from repro.sim import (
    NodeProcess,
    SynchronousKernel,
    TurboKernel,
    kernel_class,
    kernel_layout,
    kernel_names,
)
from repro.sim.faults import FaultPlan


# -- vectorized fault masking -------------------------------------------------


class _Echo(NodeProcess):
    """Scripted node: sends its wake payload, logs every delivery."""

    def __init__(self, node_id, ctx, log):
        super().__init__(node_id, ctx)
        self.log = log

    def on_wake(self, signal, payload=()):
        for dst, tag in payload[0]:
            self.ctx.unicast(dst, "DATA", tag)

    def on_message(self, msg, distance):
        self.log.append((self.id, msg.src, msg.payload, distance))


def _message_set(n, count, seed):
    """A deterministic batch of (src, dst, tag) rows, grouped by sender."""
    rng = np.random.default_rng(seed)
    srcs = rng.integers(0, n, size=count)
    dsts = rng.integers(0, n, size=count)
    keep = srcs != dsts
    srcs, dsts = srcs[keep], dsts[keep]
    order = np.argsort(srcs, kind="stable")  # group by sender, stable
    srcs, dsts = srcs[order], dsts[order]
    tags = np.arange(len(srcs), dtype=np.int64)
    return srcs, dsts, tags


class TestBatchFaultMasking:
    N = 40
    PLAN = FaultPlan(seed=11, drop_rate=0.2, dup_rate=0.15)

    def _fast_side(self, srcs, dsts, tags):
        pts = uniform_points(self.N, seed=2)
        log: list[tuple] = []
        kernel = SynchronousKernel(
            pts, max_radius=float(np.sqrt(2.0)), faults=self.PLAN
        )
        kernel.add_nodes(lambda i, ctx: _Echo(i, ctx, log))
        kernel.start()
        for u in np.unique(srcs):
            rows = [(int(d), int(t)) for d, t in zip(dsts[srcs == u], tags[srcs == u])]
            kernel.wake([int(u)], "send", (rows,))
        kernel.run_until_quiescent()
        return log, kernel.ledger

    def _turbo_side(self, srcs, dsts, tags):
        pts = uniform_points(self.N, seed=2)
        log: list[tuple] = []
        kernel = TurboKernel(pts, max_radius=float(np.sqrt(2.0)), faults=self.PLAN)
        kernel.add_nodes(lambda i, ctx: _Echo(i, ctx, log))
        kernel.start()

        def handler(kind, s, d, dist, pl):
            for i in range(len(s)):
                log.append((int(d[i]), int(s[i]), (int(pl[i]),), float(dist[i])))

        kernel.set_batch_handler("DATA", handler)
        kernel.unicast_batch(srcs, dsts, "DATA", payloads=tags)
        kernel.run_until_quiescent()
        return log, kernel.ledger

    def test_fates_order_and_charges_match_per_message(self):
        srcs, dsts, tags = _message_set(self.N, 120, seed=3)
        flog, fled = self._fast_side(srcs, dsts, tags)
        tlog, tled = self._turbo_side(srcs, dsts, tags)
        # Same survivors, same (recipient, seq) order, duplicates adjacent.
        assert tlog == flog
        # And strictly fewer deliveries than sends (drops really fired) plus
        # at least one duplicate — otherwise the masks were never exercised.
        assert dict(fled.drops_by_kind) and dict(fled.dup_deliveries_by_kind)
        assert tled.energy_total == fled.energy_total
        assert tled.messages_total == fled.messages_total
        assert dict(tled.drops_by_kind) == dict(fled.drops_by_kind)
        assert dict(tled.dup_deliveries_by_kind) == dict(fled.dup_deliveries_by_kind)
        assert dict(tled.crash_drops_by_kind) == dict(fled.crash_drops_by_kind)

    def test_batch_requires_registered_handler(self):
        pts = uniform_points(10, seed=0)
        kernel = TurboKernel(pts, max_radius=1.0)
        kernel.add_nodes(lambda i, ctx: _Echo(i, ctx, []))
        kernel.start()
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="no batch handler"):
            kernel.unicast_batch([0], [1], "NOPE")


# -- chunked CSR round trips --------------------------------------------------


class TestChunkedCSR:
    @pytest.mark.parametrize("n,seed,r", [(500, 0, 0.08), (977, 7, 0.3)])
    def test_chunked_matches_dense(self, n, seed, r):
        pts = uniform_points(n, seed=seed)
        dense = build_rgg(pts, r)
        # Odd chunk size forces several partial blocks.
        chunked = build_rgg_chunked(pts, r, chunk_nodes=173)
        assert np.array_equal(dense.edges, chunked.edges)
        assert np.array_equal(dense.lengths, chunked.lengths)
        assert np.array_equal(dense.indptr, chunked.indptr)
        assert np.array_equal(dense.indices, chunked.indices)

    def test_memmap_spill_round_trip(self, tmp_path):
        pts = uniform_points(600, seed=4)
        dense = build_rgg(pts, 0.1)
        spilled = build_rgg_chunked(
            pts, 0.1, chunk_nodes=100, memmap_threshold_bytes=64,
            workdir=str(tmp_path),
        )
        assert isinstance(spilled.indices, np.memmap)
        assert isinstance(spilled.edges.base, np.memmap)
        assert np.array_equal(dense.indices, spilled.indices)
        assert np.array_equal(dense.edges, spilled.edges)
        assert np.array_equal(dense.lengths, spilled.lengths)
        # Scratch files are unlinked immediately: nothing left behind.
        assert list(tmp_path.iterdir()) == []

    def test_empty_and_validation(self):
        g = build_rgg_chunked(np.zeros((0, 2)), 0.1)
        assert g.n == 0 and g.m == 0
        with pytest.raises(GraphError):
            build_rgg_layout(np.zeros((0, 2)), 0.1, "warp9")
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            build_rgg_chunked(np.zeros((4, 2)), 0.1, chunk_nodes=0)


class TestLayoutKeyedInstanceCache:
    def test_layouts_cached_separately(self):
        from repro.experiments.instances import clear_cache, get_graph

        clear_cache()
        try:
            dense = get_graph(200, 0, 0.12)
            chunked = get_graph(200, 0, 0.12, layout="chunked")
            assert dense is not chunked  # layout is part of the key
            assert get_graph(200, 0, 0.12) is dense  # hits its own entry
            assert get_graph(200, 0, 0.12, layout="chunked") is chunked
            assert np.array_equal(dense.indices, chunked.indices)
            with pytest.raises(GraphError, match="unknown instance layout"):
                get_graph(200, 0, 0.12, layout="warp9")
        finally:
            clear_cache()


# -- phase engine engagement --------------------------------------------------


class TestPhaseEngine:
    def _counters(self, **kwargs):
        from repro.algorithms.ghs import run_modified_ghs
        from repro.experiments.instances import get_points

        perf.reset()
        perf.enable()
        try:
            run_modified_ghs(get_points(300, 0), kernel_cls=TurboKernel, **kwargs)
            return dict(perf.counters)
        finally:
            perf.disable()
            perf.reset()

    def test_engine_engages_on_eligible_runs(self):
        counters = self._counters()
        assert counters.get("kernel.turbo_engine_rounds", 0) > 0
        assert counters.get(PEAK_RSS_COUNTER, 0) > 0  # sampled at rounds

    def test_engine_disengages_under_faults(self):
        counters = self._counters(faults=FaultPlan(seed=1, drop_rate=0.05))
        assert counters.get("kernel.turbo_engine_rounds", 0) == 0

    def test_engine_disengages_without_planes(self):
        counters = self._counters(planes=False)
        assert counters.get("kernel.turbo_engine_rounds", 0) == 0


# -- registry ----------------------------------------------------------------


class TestKernelRegistry:
    def test_canonical_modes(self):
        names = kernel_names()
        assert names[0] == "fast"  # default first
        assert set(names) >= {"fast", "legacy", "turbo"}

    def test_resolution_and_layouts(self):
        assert kernel_class("turbo") is TurboKernel
        assert kernel_layout("turbo") == "chunked"
        assert kernel_layout("fast") == "dense"
        assert kernel_layout("legacy") == "dense"

    def test_unknown_mode_lists_backends(self):
        with pytest.raises(ExperimentError, match="fast") as ei:
            kernel_class("warp9")
        for name in kernel_names():
            assert name in str(ei.value)


# -- jitted sequential energy accumulation ------------------------------------


class TestSeqEnergyAccumulate:
    """The turbo engines fold per-message energies into the ledger through
    :func:`seq_energy_accumulate`; it must be bit-identical to the scalar
    ``total += e`` loop whether or not numba is present."""

    def _reference(self, total, energies):
        total = float(total)
        for e in energies:
            total += float(e)
        return total

    def test_matches_scalar_loop_bitwise(self):
        from repro.sim import seq_energy_accumulate

        rng = np.random.default_rng(7)
        for size in (0, 1, 3, 100, 4097):
            energies = rng.uniform(0.0, 2.0, size=size)
            total = float(rng.uniform(0.0, 10.0))
            got = seq_energy_accumulate(total, energies)
            assert got == self._reference(total, energies)  # exact, not approx

    def test_no_numba_env_pins_report_bytes(self):
        """A subprocess with REPRO_NO_NUMBA=1 must emit the same report
        JSON as this process — the fallback path may not drift."""
        import os
        import subprocess
        import sys

        from repro.runspec import RunSpec, execute

        spec = RunSpec(algorithm="MGHS", n=250, seed=3, kernel="turbo")
        local = execute(spec).to_json(indent=None)
        code = (
            "import sys, json\n"
            "from repro.runspec import RunSpec, execute\n"
            "spec = RunSpec.from_dict(json.loads(sys.argv[1]))\n"
            "sys.stdout.write(execute(spec).to_json(indent=None))\n"
        )
        env = dict(os.environ, REPRO_NO_NUMBA="1", PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c", code, spec.to_json()],
            capture_output=True, text=True, env=env, cwd=os.getcwd(), check=True,
        )
        assert out.stdout == local
