"""Tests for the reception-energy extension (paper Sec. VIII)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.connt import run_connt
from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_ghs
from repro.errors import GeometryError
from repro.geometry.points import uniform_points
from repro.mst.quality import same_tree
from repro.sim.kernel import SynchronousKernel
from repro.sim.node import NodeProcess


class Hello(NodeProcess):
    def on_wake(self, signal, payload=()):
        self.ctx.local_broadcast(payload[0], "H")


class TestKernelRx:
    def test_default_off(self):
        pts = uniform_points(20, seed=0)
        k = SynchronousKernel(pts, max_radius=1.0)
        k.add_nodes(Hello)
        k.start()
        k.wake(range(20), "go", (0.5,))
        k.run_until_quiescent()
        s = k.stats()
        assert s.rx_energy_total == 0.0
        assert s.receptions_total == 0

    def test_rx_charged_per_delivery(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]])
        k = SynchronousKernel(pts, max_radius=1.0, rx_cost=0.01)
        k.add_nodes(Hello)
        k.start()
        k.wake([0], "go", (0.15,))  # reaches node 1 only
        k.run_until_quiescent()
        s = k.stats()
        assert s.receptions_total == 1
        assert s.rx_energy_total == pytest.approx(0.01)
        assert s.rx_energy_by_node[1] == pytest.approx(0.01)
        assert s.rx_energy_by_node[0] == 0.0
        # TX-side metric untouched.
        assert s.energy_total == pytest.approx(0.15**2)
        assert s.total_energy_with_rx == pytest.approx(0.15**2 + 0.01)

    def test_negative_rx_rejected(self):
        with pytest.raises(GeometryError):
            SynchronousKernel(uniform_points(5), max_radius=1.0, rx_cost=-1.0)

    def test_contention_kernel_charges_rx(self):
        from repro.sim.interference import ContentionKernel

        pts = np.array([[0.0, 0.0], [0.05, 0.0], [0.1, 0.0]])
        k = ContentionKernel(pts, max_radius=1.0, rx_cost=0.5)
        k.add_nodes(Hello)
        k.start()
        k.wake(range(3), "go", (0.2,))
        k.run_until_quiescent()
        assert k.stats().receptions_total == 6  # everyone hears everyone


class TestAlgorithmsWithRx:
    def test_tree_unchanged(self):
        """rx accounting is observational: protocols behave identically."""
        pts = uniform_points(120, seed=0)
        a = run_eopt(pts)
        b = run_eopt(pts, rx_cost=0.001)
        assert same_tree(a.tree_edges, b.tree_edges)
        assert a.energy == pytest.approx(b.energy)
        assert b.stats.rx_energy_total > 0

    def test_receptions_track_deliveries(self):
        """Co-NNT: every unicast has 1 receiver; REQUEST broadcasts have
        however many listeners were in range — receptions >= messages."""
        pts = uniform_points(100, seed=1)
        res = run_connt(pts, rx_cost=1.0)
        assert res.stats.receptions_total >= res.stats.messages_total
        assert res.stats.rx_energy_total == pytest.approx(
            float(res.stats.receptions_total)
        )

    def test_rx_penalises_chatty_ghs_hardest(self):
        """Under reception costs the message-hungry GHS falls even further
        behind EOPT — the Sec. VIII observation that TX-only accounting
        understates the gap."""
        pts = uniform_points(400, seed=2)
        rx = 1e-4
        ghs = run_ghs(pts, rx_cost=rx)
        eopt = run_eopt(pts, rx_cost=rx)
        gap_tx = ghs.energy / eopt.energy
        gap_total = ghs.stats.total_energy_with_rx / eopt.stats.total_energy_with_rx
        assert gap_total > 1.0
        assert ghs.stats.receptions_total > eopt.stats.receptions_total
