"""Tests for the potential-region analytics (paper Fig. 2, Lemmas 6.1-6.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry.points import uniform_points
from repro.geometry.potential import (
    nearest_higher_rank_distance,
    potential_angle,
    potential_area,
    potential_distance,
)
from repro.geometry.ranks import diagonal_ranks

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestPotentialArea:
    def test_origin_has_full_area(self):
        assert potential_area(np.array([[0.0, 0.0]]))[0] == pytest.approx(1.0)

    def test_far_corner_has_zero_area(self):
        assert potential_area(np.array([[1.0, 1.0]]))[0] == pytest.approx(0.0)

    def test_center(self):
        # s = 1: region above the main anti-diagonal has area 1/2.
        assert potential_area(np.array([[0.5, 0.5]]))[0] == pytest.approx(0.5)

    @given(unit, unit)
    @settings(max_examples=50)
    def test_matches_monte_carlo(self, x, y):
        """Closed form vs Monte Carlo integration of the region indicator."""
        rng = np.random.default_rng(0)
        samples = rng.random((20000, 2))
        frac = np.mean(samples.sum(axis=1) > x + y)
        area = potential_area(np.array([[x, y]]))[0]
        assert area == pytest.approx(frac, abs=0.02)

    def test_monotone_in_diagonal(self):
        """Area shrinks as the node moves up the diagonal."""
        ts = np.linspace(0, 1, 11)
        pts = np.stack([ts, ts], axis=1)
        a = potential_area(pts)
        assert (np.diff(a) < 0).all()


class TestPotentialDistance:
    def test_origin(self):
        # Farthest point of the whole square from (0,0) is (1,1).
        assert potential_distance(np.array([[0.0, 0.0]]))[0] == pytest.approx(np.sqrt(2))

    def test_reaches_far_corner_when_below_diagonal(self):
        d = potential_distance(np.array([[0.3, 0.2]]))[0]
        assert d == pytest.approx(np.hypot(0.7, 0.8))

    @given(unit, unit)
    @settings(max_examples=50)
    def test_dominates_region_samples(self, x, y):
        """No sampled point of the region is farther than L_u."""
        rng = np.random.default_rng(1)
        samples = rng.random((5000, 2))
        in_region = samples.sum(axis=1) > x + y
        if not in_region.any():
            return
        d = np.sqrt(((samples[in_region] - [x, y]) ** 2).sum(axis=1))
        L = potential_distance(np.array([[x, y]]))[0]
        assert d.max() <= L + 1e-9


class TestPotentialAngle:
    @given(st.lists(st.tuples(unit, unit), min_size=1, max_size=40))
    def test_lemma_6_1(self, pts):
        """alpha_u >= 1/2 for every node except a node exactly at (1,1)."""
        arr = np.array(pts)
        alpha = potential_angle(arr)
        at_corner = (arr[:, 0] == 1.0) & (arr[:, 1] == 1.0)
        assert (alpha[~at_corner] >= 0.5 - 1e-9).all()

    def test_lemma_6_1_on_uniform(self):
        alpha = potential_angle(uniform_points(2000, seed=0))
        assert alpha.min() >= 0.5

    def test_angle_at_most_two(self):
        """alpha = 2A/L^2 <= 2 since A <= L^2 ... in fact A <= pi L^2 / 4;
        on the unit square alpha never exceeds 2."""
        alpha = potential_angle(uniform_points(1000, seed=1))
        assert alpha.max() <= 2.0 + 1e-9

    def test_corner_node_zero(self):
        assert potential_angle(np.array([[1.0, 1.0]]))[0] == 0.0

    def test_rejects_outside_square(self):
        with pytest.raises(GeometryError):
            potential_angle(np.array([[1.2, 0.0]]))


class TestNearestHigherRank:
    def test_brute_force_agreement(self):
        pts = uniform_points(80, seed=3)
        ranks = diagonal_ranks(pts)
        d = nearest_higher_rank_distance(pts, ranks)
        for u in range(80):
            higher = np.nonzero(ranks > ranks[u])[0]
            if len(higher) == 0:
                assert np.isinf(d[u])
            else:
                dd = np.sqrt(((pts[higher] - pts[u]) ** 2).sum(axis=1))
                assert d[u] == pytest.approx(dd.min())

    def test_exactly_one_infinite(self):
        d = nearest_higher_rank_distance(uniform_points(120, seed=4))
        assert np.isinf(d).sum() == 1

    def test_lemma_6_2_expectation(self):
        """E[d_u^2] <= 2/(n alpha_u) <= 4/n on average (Thm 6.1 arithmetic)."""
        n = 3000
        pts = uniform_points(n, seed=5)
        d = nearest_higher_rank_distance(pts)
        finite = np.isfinite(d)
        assert np.sum(d[finite] ** 2) <= 4.0

    def test_lemma_6_3_whp_bound(self):
        """All d_u <= c sqrt(log n / n) with a modest c on a typical instance."""
        n = 2000
        pts = uniform_points(n, seed=6)
        d = nearest_higher_rank_distance(pts)
        finite = np.isfinite(d)
        assert d[finite].max() <= 3.0 * np.sqrt(np.log(n) / n)

    def test_small_inputs(self):
        assert nearest_higher_rank_distance(np.zeros((0, 2))).shape == (0,)
        one = nearest_higher_rank_distance(np.array([[0.5, 0.5]]))
        assert np.isinf(one[0])

    def test_ranks_length_mismatch(self):
        with pytest.raises(GeometryError):
            nearest_higher_rank_distance(uniform_points(5), np.arange(4))

    def test_expanding_query_small_initial_k(self):
        """Force several doubling rounds to cover the expansion path."""
        pts = uniform_points(300, seed=7)
        a = nearest_higher_rank_distance(pts, initial_k=2)
        b = nearest_higher_rank_distance(pts, initial_k=300)
        finite = np.isfinite(a)
        assert np.allclose(a[finite], b[finite])
