"""Tests for the diagonal and lexicographic rankings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.points import uniform_points
from repro.geometry.ranks import diagonal_ranks, lexicographic_ranks, rank_permutation

coords = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1, allow_nan=False),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


class TestDiagonal:
    def test_simple_order(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        r = diagonal_ranks(pts)
        assert r[0] == 0 and r[1] == 2 and r[2] == 1

    def test_tie_broken_by_y(self):
        # Same diagonal x+y = 1: smaller y ranks lower.
        pts = np.array([[0.9, 0.1], [0.1, 0.9]])
        r = diagonal_ranks(pts)
        assert r[0] == 0 and r[1] == 1

    def test_is_permutation(self):
        pts = uniform_points(100, seed=0)
        r = diagonal_ranks(pts)
        assert sorted(r) == list(range(100))

    def test_top_rank_is_max_diagonal(self):
        pts = uniform_points(200, seed=1)
        r = diagonal_ranks(pts)
        top = int(np.argmax(r))
        s = pts[:, 0] + pts[:, 1]
        assert s[top] == s.max()

    @given(coords)
    def test_permutation_property(self, pts):
        r = diagonal_ranks(np.array(pts))
        assert sorted(r) == list(range(len(pts)))

    @given(coords)
    def test_order_respects_diagonal(self, pts):
        arr = np.array(pts)
        r = diagonal_ranks(arr)
        s = arr[:, 0] + arr[:, 1]
        for i in range(len(arr)):
            for j in range(len(arr)):
                if s[i] < s[j]:
                    assert r[i] < r[j]

    def test_bad_shape(self):
        with pytest.raises(GeometryError):
            diagonal_ranks(np.zeros((3, 3)))


class TestLexicographic:
    def test_simple_order(self):
        pts = np.array([[0.5, 0.0], [0.1, 0.9], [0.5, 0.2]])
        r = lexicographic_ranks(pts)
        assert r[1] == 0  # smallest x
        assert r[0] == 1  # x=0.5 tie, y=0 before y=0.2
        assert r[2] == 2

    @given(coords)
    def test_permutation_property(self, pts):
        r = lexicographic_ranks(np.array(pts))
        assert sorted(r) == list(range(len(pts)))

    @given(coords)
    def test_order_respects_x(self, pts):
        arr = np.array(pts)
        r = lexicographic_ranks(arr)
        for i in range(len(arr)):
            for j in range(len(arr)):
                if arr[i, 0] < arr[j, 0]:
                    assert r[i] < r[j]


class TestRankPermutation:
    def test_round_trip(self):
        pts = uniform_points(50, seed=2)
        r = diagonal_ranks(pts)
        order = rank_permutation(r)
        assert np.array_equal(r[order], np.arange(50))

    def test_rejects_non_permutation(self):
        with pytest.raises(GeometryError):
            rank_permutation(np.array([0, 0, 2]))

    def test_empty(self):
        assert rank_permutation(np.zeros(0, dtype=np.int64)).shape == (0,)
