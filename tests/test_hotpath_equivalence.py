"""The fast kernel must be observationally identical to the legacy one.

The hot-path rework (neighbor table, broadcast descriptors, vectorized
delivery ordering, batched ledger breakdowns) is only legal because it
changes *nothing* an algorithm or an experiment can observe.  These tests
pin that contract at two levels:

* end to end — GHS / modified GHS / EOPT produce bit-identical energy,
  message, round stats and MST edge sets on both kernels;
* kernel level — scripted nodes record every delivered message in order;
  the (kind, src, distance) sequences and full ledger snapshots must
  match exactly, including sub-max-radius broadcasts, radius changes in
  both directions, rx charges and the dense-fallback path.

The flood-plane fast path (``planes=True``, the default) rides the same
contract: every algorithm run is checked with planes on *and* off
against the legacy kernel, the two fast-kernel paths must agree on the
complete ledger (including the batched breakdowns, which are summed in
the same order), and the plane path must demonstrably engage — a test
that silently fell back to per-message delivery would pin nothing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_ghs, run_modified_ghs
from repro.geometry.points import uniform_points
from repro.perf import perf
from repro.sim import LegacyKernel, NodeProcess, SynchronousKernel, kernel_class, kernel_names
from repro.sim.faults import FaultPlan


def _assert_breakdown_close(new: dict, old: dict):
    """Energy breakdowns are batched sums: same terms, possibly summed in
    a different association order — equal up to float reassociation."""
    assert new.keys() == old.keys()
    for k in old:
        assert new[k] == pytest.approx(old[k], rel=1e-12, abs=1e-15)


def _assert_same_result(old, new):
    # The hard contract: headline stats and the tree are bit-identical.
    assert new.stats.energy_total == old.stats.energy_total
    assert new.stats.messages_total == old.stats.messages_total
    assert new.stats.rounds == old.stats.rounds
    assert new.stats.messages_by_kind == old.stats.messages_by_kind
    assert new.stats.messages_by_stage == old.stats.messages_by_stage
    assert np.array_equal(new.tree_edges, old.tree_edges)
    _assert_breakdown_close(new.stats.energy_by_kind, old.stats.energy_by_kind)
    _assert_breakdown_close(new.stats.energy_by_stage, old.stats.energy_by_stage)


@pytest.mark.parametrize(
    "runner, n, seed",
    [
        (run_ghs, 180, 3),
        (run_modified_ghs, 300, 0),
        (run_modified_ghs, 300, 5),
        (run_eopt, 300, 2),
        (run_eopt, 400, 11),
    ],
)
def test_algorithms_bit_identical(runner, n, seed):
    pts = uniform_points(n, seed=seed)
    old = runner(pts, kernel_cls=LegacyKernel)
    perf.reset()
    perf.enable()
    try:
        new = runner(pts)  # planes on (the default)
    finally:
        plane_sends = perf.counters.get("kernel.plane_sends", 0)
        perf.disable()
        perf.reset()
    off = runner(pts, planes=False)
    # The plane path must actually have run, or this test pins nothing.
    assert plane_sends > 0
    _assert_same_result(old, new)
    _assert_same_result(old, off)
    # Planes on/off share the fast kernel's charge order, so even the
    # batched breakdowns are bit-identical between them (not just close).
    assert new.stats.energy_by_kind == off.stats.energy_by_kind
    assert new.stats.energy_by_stage == off.stats.energy_by_stage


@pytest.mark.parametrize("faulty", [False, True], ids=["clean", "faults"])
@pytest.mark.parametrize("planes", [True, False], ids=["planes", "noplanes"])
@pytest.mark.parametrize("mode", [m for m in kernel_names() if m != "legacy"])
def test_registered_backends_match_reference(mode, planes, faulty):
    """Every registered backend honors the observational contract against
    the frozen legacy reference, across the planes x faults matrix.  The
    turbo backend's whole-round engine must demonstrably engage on its
    eligible combination (planes on, no faults) — a silently disengaged
    engine would pin nothing."""
    pts = uniform_points(250, seed=1)
    kwargs = {"planes": planes}
    if faulty:
        kwargs["faults"] = FaultPlan(seed=7, drop_rate=0.05)
    ref = run_modified_ghs(pts, kernel_cls=LegacyKernel, **kwargs)
    perf.reset()
    perf.enable()
    try:
        res = run_modified_ghs(pts, kernel_cls=kernel_class(mode), **kwargs)
        engine_rounds = perf.counters.get("kernel.turbo_engine_rounds", 0)
    finally:
        perf.disable()
        perf.reset()
    _assert_same_result(ref, res)
    if mode == "turbo" and planes and not faulty:
        assert engine_rounds > 0


def test_trace_streams_identical_with_triage_on_failure():
    """The trace plane doubles as the equivalence suite's triage tool:
    run legacy and fast kernels with tracing on and diff the event
    streams.  On divergence the assertion message carries the first
    divergent event with context — the exact phase/round where the
    kernels parted ways — instead of a bare stats mismatch."""
    from repro.trace import trace
    from repro.trace.diff import diff_traces, format_divergence

    pts = uniform_points(300, seed=0)

    def traced(**kwargs):
        trace.reset()
        trace.enable()
        try:
            run_modified_ghs(pts, **kwargs)
            return trace.snapshot()
        finally:
            trace.disable()
            trace.reset()

    legacy = traced(kernel_cls=LegacyKernel)
    fast = traced()
    d = diff_traces(legacy, fast)
    assert d is None, format_divergence(d, "legacy", "fast")


def test_rx_cost_bit_identical():
    pts = uniform_points(250, seed=4)
    old = run_modified_ghs(pts, rx_cost=0.01, kernel_cls=LegacyKernel)
    new = run_modified_ghs(pts, rx_cost=0.01)
    off = run_modified_ghs(pts, rx_cost=0.01, planes=False)
    _assert_same_result(old, new)
    _assert_same_result(old, off)


class _Recorder(NodeProcess):
    """Scripted node: logs every delivery, answers PING with a unicast."""

    def __init__(self, node_id, ctx):
        super().__init__(node_id, ctx)
        self.heard = []

    def on_message(self, msg, distance):
        self.heard.append((msg.kind, msg.src, distance))
        if msg.kind == "PING":
            self.ctx.unicast(msg.src, "PONG", self.id)

    def on_wake(self, signal, payload=()):
        if signal == "bcast":
            self.ctx.local_broadcast(payload[0], "PING", self.id)


def _drive(kernel_cls, *, rx_cost=0.0):
    """A scripted scenario covering every delivery path.

    Full-radius and sub-radius broadcasts, PING->PONG unicast echoes,
    lowering the cap (superset table stays), raising it back above the
    build radius (table invalidation), all under one deterministic
    point set.
    """
    pts = uniform_points(60, seed=9)
    r = 0.3
    kernel = kernel_cls(pts, max_radius=r, rx_cost=rx_cost)
    kernel.add_nodes(lambda i, ctx: _Recorder(i, ctx))
    kernel.start()
    # Round of full-radius broadcasts from a few senders.
    kernel.wake([0, 7, 13], "bcast", (r,))
    kernel.run_until_quiescent()
    # Sub-radius broadcasts (exercises the searchsorted cutoff).
    kernel.set_stage("narrow")
    kernel.wake([3, 13, 42], "bcast", (0.4 * r,))
    kernel.run_until_quiescent()
    # Lower the cap: the cached superset table must still filter right.
    kernel.set_max_radius(0.5 * r)
    kernel.wake([5, 20], "bcast", (0.5 * r,))
    kernel.run_until_quiescent()
    # Raise the cap past the build radius: table must be invalidated.
    kernel.set_max_radius(2.5 * r)
    kernel.set_stage("wide")
    kernel.wake([11, 30], "bcast", (2.5 * r,))
    kernel.run_until_quiescent()
    logs = [nd.heard for nd in kernel.nodes]
    return logs, kernel.stats(), kernel.ledger.energy_by_node.copy()


@pytest.mark.parametrize("rx_cost", [0.0, 0.005])
def test_delivery_order_identical(rx_cost):
    old_logs, old_stats, old_by_node = _drive(LegacyKernel, rx_cost=rx_cost)
    new_logs, new_stats, new_by_node = _drive(SynchronousKernel, rx_cost=rx_cost)
    assert new_logs == old_logs
    assert new_stats.energy_total == old_stats.energy_total
    assert new_stats.messages_total == old_stats.messages_total
    assert new_stats.rounds == old_stats.rounds
    assert new_stats.messages_by_kind == old_stats.messages_by_kind
    _assert_breakdown_close(new_stats.energy_by_kind, old_stats.energy_by_kind)
    _assert_breakdown_close(new_stats.energy_by_stage, old_stats.energy_by_stage)
    np.testing.assert_allclose(new_by_node, old_by_node, rtol=1e-12, atol=1e-15)


def test_dense_fallback_identical():
    # A near-global cap blows the table density budget; the kernel must
    # fall back to per-call queries and still match legacy exactly.
    pts = uniform_points(400, seed=1)
    r = float(np.sqrt(2.0))

    def drive(kernel_cls):
        kernel = kernel_cls(pts, max_radius=r)
        kernel.add_nodes(lambda i, ctx: _Recorder(i, ctx))
        kernel.start()
        kernel.wake([0, 17], "bcast", (0.9,))
        kernel.run_until_quiescent()
        return [nd.heard for nd in kernel.nodes], kernel.stats()

    old_logs, old_stats = drive(LegacyKernel)
    new_logs, new_stats = drive(SynchronousKernel)
    assert new_logs == old_logs
    assert new_stats.energy_total == old_stats.energy_total
    assert new_stats.messages_total == old_stats.messages_total
    assert new_stats.rounds == old_stats.rounds
