"""Tests for JSON persistence of sweeps and results."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algorithms.connt import run_connt
from repro.errors import ExperimentError
from repro.experiments.config import SweepConfig
from repro.experiments.io import (
    load_sweep,
    result_to_dict,
    save_result,
    save_sweep,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.experiments.runner import sweep_energy
from repro.geometry.points import uniform_points


@pytest.fixture(scope="module")
def sweep():
    return sweep_energy(SweepConfig(ns=(50, 100), seeds=(0,), algorithms=("Co-NNT",)))


class TestSweepIO:
    def test_round_trip_dict(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep))
        assert back.config == sweep.config
        for alg in sweep.config.algorithms:
            assert np.array_equal(back.energy[alg], sweep.energy[alg])
            assert np.array_equal(back.messages[alg], sweep.messages[alg])
            assert np.array_equal(back.rounds[alg], sweep.rounds[alg])

    def test_round_trip_file(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "sweep.json")
        back = load_sweep(path)
        assert back.config.ns == sweep.config.ns
        assert np.allclose(back.mean_energy("Co-NNT"), sweep.mean_energy("Co-NNT"))

    def test_file_is_plain_json(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "sweep.json")
        data = json.loads(path.read_text())
        assert data["kind"] == "energy_sweep"
        assert data["schema_version"] == 1

    def test_wrong_kind_rejected(self):
        with pytest.raises(ExperimentError):
            sweep_from_dict({"kind": "other", "schema_version": 1})

    def test_wrong_schema_rejected(self, sweep):
        data = sweep_to_dict(sweep)
        data["schema_version"] = 99
        with pytest.raises(ExperimentError):
            sweep_from_dict(data)

    def test_legacy_schema_key_accepted(self, sweep):
        """Payloads written before the runspec layer used ``schema``."""
        data = sweep_to_dict(sweep)
        data["schema"] = data.pop("schema_version")
        back = sweep_from_dict(data)
        assert back.config == sweep.config

    def test_shape_mismatch_rejected(self, sweep):
        data = sweep_to_dict(sweep)
        data["energy"]["Co-NNT"] = [[1.0]]
        with pytest.raises(ExperimentError):
            sweep_from_dict(data)


class TestResultIO:
    def test_result_serialises(self, tmp_path):
        res = run_connt(uniform_points(60, seed=0))
        path = save_result(res, tmp_path / "run.json")
        data = json.loads(path.read_text())
        assert data["name"] == "Co-NNT"
        assert data["n"] == 60
        assert len(data["tree_edges"]) == 59
        assert data["stats"]["energy_total"] == pytest.approx(res.energy)
        # Extras must be valid JSON even with numpy scalars inside.
        assert isinstance(data["extras"]["max_probe_radius"], float)

    def test_dict_has_all_stats(self):
        res = run_connt(uniform_points(30, seed=1))
        d = result_to_dict(res)
        for key in (
            "energy_total",
            "messages_total",
            "rounds",
            "energy_by_kind",
            "rx_energy_total",
        ):
            assert key in d["stats"]
