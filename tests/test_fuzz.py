"""Fuzz subsystem tests: harness fidelity, worlds, corpus, machines.

The load-bearing property is harness fidelity: :class:`repro.fuzz.
harness.StepHarness` re-expresses the production driver loop as a
resumable generator, and everything the fuzzer concludes rests on that
loop being *bit-identical* to the runner — same tree, same stats, same
rounds, clean and faulted alike.  The corpus tests replay every
checked-in counterexample (``tests/corpus/``) so a fixed bug stays
fixed; the machine tests give the hypothesis layer a tiny deterministic
budget as an import-to-teardown smoke.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms.ghs import run_ghs, run_modified_ghs
from repro.errors import ProtocolError
from repro.experiments.instances import get_points
from repro.fuzz.corpus import (
    iter_corpus,
    load_scenario,
    replay_scenario,
    save_scenario,
)
from repro.fuzz.connt_world import ConntRetryWorld
from repro.fuzz.harness import StepHarness
from repro.fuzz.recorder import RecordingFaultPlane, verify_fate_determinism
from repro.fuzz.retry_world import RetryFuzzWorld
from repro.fuzz.world import GHSFuzzWorld, default_configs
from repro.geometry.radius import connectivity_radius
from repro.mst.quality import same_tree
from repro.sim.faults import FaultPlan

CORPUS_DIR = "tests/corpus"

FAULTED = FaultPlan(seed=5, drop_rate=0.2, dup_rate=0.1)


def _stats_key(stats):
    return (
        stats.energy_total,
        stats.messages_total,
        stats.rounds,
        stats.messages_by_kind,
        stats.energy_by_kind,
    )


class TestHarnessFidelity:
    """StepHarness must reproduce the production runner bit for bit."""

    @pytest.mark.parametrize("faults", [None, FAULTED], ids=["clean", "faulted"])
    def test_matches_modified_ghs(self, faults):
        pts = get_points(40, 3)
        r = connectivity_radius(40)
        ref = run_modified_ghs(pts, radius=r, faults=faults)
        h = StepHarness(pts, radius=r, faults=faults)
        h.run_to_completion()
        edges, stats = h.result()
        assert same_tree(edges, ref.tree_edges)
        assert _stats_key(stats) == _stats_key(ref.stats)

    def test_matches_original_ghs(self):
        pts = get_points(30, 1)
        r = connectivity_radius(30)
        ref = run_ghs(pts, radius=r, faults=FAULTED)
        h = StepHarness(pts, radius=r, use_tests=True, faults=FAULTED)
        h.run_to_completion()
        edges, stats = h.result()
        assert same_tree(edges, ref.tree_edges)
        assert _stats_key(stats) == _stats_key(ref.stats)

    def test_partial_advance_is_invariant(self):
        """Chunking the schedule must not change anything observable."""
        pts = get_points(30, 2)
        r = connectivity_radius(30)
        whole = StepHarness(pts, radius=r, faults=FAULTED)
        whole.run_to_completion()
        chunked = StepHarness(pts, radius=r, faults=FAULTED)
        step = 1
        while not chunked.finished:
            chunked.advance(step)
            step = (step % 7) + 1  # 1,2,...,7,1,... — deliberately ragged
        we, ws = whole.result()
        ce, cs = chunked.result()
        assert same_tree(we, ce)
        assert _stats_key(ws) == _stats_key(cs)
        assert whole.barriers == chunked.barriers

    def test_advance_reports_rounds_run(self):
        pts = get_points(24, 0)
        h = StepHarness(pts, radius=connectivity_radius(24))
        assert h.advance(5) == 5
        assert h.rounds == 5
        h.run_to_completion()
        assert h.advance(5) == 0  # finished: nothing left to run

    def test_cap_below_radius_rejected(self):
        pts = get_points(24, 0)
        r = connectivity_radius(24)
        h = StepHarness(pts, radius=r, max_radius=r * 1.2)
        with pytest.raises(ProtocolError):
            h.set_cap(r * 0.5)

    def test_result_before_finish_rejected(self):
        pts = get_points(24, 0)
        h = StepHarness(pts, radius=connectivity_radius(24))
        with pytest.raises(ProtocolError):
            h.result()


class TestGHSFuzzWorld:
    def test_clean_world_finishes_aligned(self):
        w = GHSFuzzWorld(n=16, seed=0)
        assert len(w.harnesses) == len(default_configs()) >= 3
        w.advance(25)
        w.finish()
        assert w.finished and not w.failed

    def test_faulted_world_with_midrun_crash(self):
        w = GHSFuzzWorld(
            n=18, seed=1, drop_rate=0.15, dup_rate=0.1, fault_seed=9, cap_slack=1.25
        )
        w.advance(20)
        start = w.crash(5, 10)
        assert start == 20
        w.set_cap(0.5)
        w.finish()
        assert w.finished
        # Mid-run windows become ordinary plan entries in the artifacts.
        plan = w.effective_plan()
        assert (5, 20, 30) in plan.crashes
        assert w.to_runspec().faults == plan

    def test_dead_node_excluded_from_oracle(self):
        w = GHSFuzzWorld(n=16, seed=2, drop_rate=0.1, dead_nodes=(4,), fault_seed=2)
        w.finish()
        assert w.finished
        assert all(4 not in edge for edge in map(tuple, w.oracle_forest()))

    def test_crash_rules_validated(self):
        w = GHSFuzzWorld(n=14, seed=0)
        with pytest.raises(ProtocolError):
            w.crash(3, 5)  # null plan: crash plane never compiled
        w2 = GHSFuzzWorld(n=14, seed=0, drop_rate=0.1, fault_seed=1)
        w2.crash(3, 5)
        with pytest.raises(ProtocolError):
            w2.crash(3, 5)  # one window per node

    def test_scenario_roundtrip_replays(self):
        w = GHSFuzzWorld(n=16, seed=3, drop_rate=0.15, fault_seed=4)
        w.advance(15)
        w.crash(2, 8)
        w.finish()
        replayed = replay_scenario(w.to_scenario())
        assert replayed.finished and not replayed.failed

    def test_replay_drift_detected(self):
        w = GHSFuzzWorld(n=16, seed=3, drop_rate=0.15, fault_seed=4)
        w.advance(15)
        w.crash(2, 8)
        scenario = w.to_scenario()
        # Tamper with the schedule: the crash now opens at a different
        # round than recorded, which must fail loudly instead of quietly
        # fuzzing a different world.
        assert scenario["ops"][0] == ["advance", 15]
        scenario["ops"][0] = ["advance", 14]
        with pytest.raises(ProtocolError, match="drift"):
            replay_scenario(scenario)


class TestRetryFuzzWorld:
    def test_clean_send_and_drain(self):
        w = RetryFuzzWorld(n=6)
        w.send(0, 1)
        w.send(4, 2)
        w.run_rounds(3)
        w.drain()
        assert w.drained
        assert (0, 0) in w.nodes[1].delivered
        assert (4, 1) in w.nodes[2].delivered

    def test_lossy_world_meets_contract(self):
        w = RetryFuzzWorld(n=6, fault_seed=7, drop_rate=0.3, dup_rate=0.2)
        for src, dst in [(0, 2), (3, 1), (5, 4), (2, 0)]:
            w.send(src, dst)
        w.run_rounds(2)
        w.retry_tick()
        w.run_rounds(2)
        w.drain()  # raises if dedup/liveness/compaction fail
        assert w.drained

    def test_gone_holder_drains_without_hang(self):
        """The incriminating schedule: a dead node still holds unacked
        traffic; pre-fix drain_reliable burned its whole iteration budget
        here and raised."""
        w = RetryFuzzWorld(n=5, fault_seed=1)
        w.send(0, 1)
        w.run_rounds(1)
        w.crash_forever(0)
        w.drain()
        assert w.drained
        assert w.nodes[0].retry.pending  # legitimately stuck forever
        assert (0, 0) in w.nodes[1].delivered

    def test_crash_forever_guarded_by_pending_traffic(self):
        w = RetryFuzzWorld(n=5, fault_seed=0, drop_rate=0.2)
        w.send(1, 3)
        with pytest.raises(ProtocolError, match="unacked"):
            w.crash_forever(3)  # node 1 holds traffic addressed to 3

    def test_planned_midrun_permanent_death_rejected(self):
        with pytest.raises(ProtocolError, match="start=0"):
            RetryFuzzWorld(n=5, crashes=((0, 3, None),))

    def test_fate_recording_verifies(self):
        w = RetryFuzzWorld(n=6, fault_seed=3, drop_rate=0.25, dup_rate=0.2)
        w.send(0, 2)
        w.run_rounds(4)
        w.drain()
        fp = w.kernel.faults
        assert isinstance(fp, RecordingFaultPlane)
        assert fp.total_rows > 0
        assert verify_fate_determinism(fp) > 0


class TestConntRetryWorld:
    """The reliable layer embedded in real Co-NNT traffic (ROADMAP
    item 4 headroom): probe phases interleaved with crash windows and
    retry bursts, invariants checked at finish."""

    def test_clean_world_finishes(self):
        w = ConntRetryWorld(n=7, seed=1)
        w.finish()
        assert w.finished
        live = [nd for nd in w.nodes]
        # Exactly one unconnected survivor: the top-ranked node.
        assert sum(1 for nd in live if nd.connected_to is None) == 1

    def test_faulted_world_meets_contract(self):
        w = ConntRetryWorld(
            n=8,
            seed=2,
            fault_seed=5,
            drop_rate=0.25,
            dup_rate=0.2,
            link_loss=(((1, 3), 0.5),),
            crashes=((2, 0, None), (4, 3, 9)),
        )
        w.probe_step()
        w.crash(5, 4)
        w.retry_tick()
        w.run_rounds(3)
        w.finish()  # raises if any reliable-layer invariant fails
        assert w.finished
        assert any(
            nd.retry.accepted for nd in w.nodes if nd.retry is not None
        )

    def test_planned_midrun_permanent_death_rejected(self):
        with pytest.raises(ProtocolError, match="start=0"):
            ConntRetryWorld(n=6, crashes=((0, 3, None),))

    def test_crash_rules_validated(self):
        w = ConntRetryWorld(n=6, seed=0, crashes=((1, 0, None),))
        with pytest.raises(ProtocolError, match="already has"):
            w.crash(1, 5)
        with pytest.raises(ProtocolError, match="duration"):
            w.crash(2, 0)

    def test_scenario_roundtrip_replays(self):
        w = ConntRetryWorld(
            n=7, seed=3, fault_seed=11, drop_rate=0.25, dup_rate=0.2,
            crashes=((1, 0, None),),
        )
        w.probe_step()
        w.crash(4, 5)
        w.retry_tick()
        w.probe_step()
        w.finish()
        replayed = replay_scenario(w.to_scenario())
        assert replayed.finished and not replayed.failed
        assert replayed.phase == w.phase
        assert [
            (nd.id, nd.connected_to) for nd in replayed.nodes
        ] == [(nd.id, nd.connected_to) for nd in w.nodes]

    def test_replay_drift_detected(self):
        w = ConntRetryWorld(n=6, seed=0)
        w.probe_step()
        scenario_start = w.crash(3, 4)
        with pytest.raises(ProtocolError, match="drift"):
            w2 = ConntRetryWorld(n=6, seed=0)
            # No probe_step first: the clock is at a different round.
            w2.crash(3, 4, expect_start=scenario_start + 17)

    def test_world_convicts_unreliable_connection(self, monkeypatch):
        """Seeded bug: route CONNECTION around the retry layer and the
        symmetry invariant convicts it — the world's checks are not
        tautologies over whatever the protocol happens to do."""
        import repro.algorithms.connt.node as cnode

        monkeypatch.setattr(
            cnode,
            "_UNRELIABLE_KINDS",
            frozenset(("REQUEST", "ACK", "CONNECTION")),
        )
        w = ConntRetryWorld(n=7, seed=1, fault_seed=0, drop_rate=0.25)
        with pytest.raises(ProtocolError, match="not symmetric"):
            w.finish()
        assert w.failed

    def test_world_convicts_broken_dedup(self, monkeypatch):
        """Seeded bug: a receiver that accepts every copy violates the
        compaction (and, under duplication, at-most-once) invariants."""
        from repro.fuzz.connt_world import RecordingRetryBuffer

        def no_dedup(self, src, seq):
            self.accepted.append((src, seq))
            return True

        monkeypatch.setattr(RecordingRetryBuffer, "accept", no_dedup)
        w = ConntRetryWorld(n=7, seed=1, fault_seed=3, dup_rate=0.2)
        with pytest.raises(ProtocolError):
            w.finish()
        assert w.failed

    def test_fate_recording_verifies(self):
        w = ConntRetryWorld(
            n=6, seed=2, fault_seed=3, drop_rate=0.25, dup_rate=0.2
        )
        w.finish()
        fp = w.kernel.faults
        assert isinstance(fp, RecordingFaultPlane)
        assert fp.total_rows > 0
        assert verify_fate_determinism(fp) > 0


class TestCorpus:
    def test_corpus_is_nonempty(self):
        assert len(iter_corpus(CORPUS_DIR)) >= 3

    @pytest.mark.parametrize(
        "path", iter_corpus(CORPUS_DIR), ids=lambda p: p.stem
    )
    def test_corpus_scenario_replays_clean(self, path):
        """Every checked-in counterexample must stay fixed."""
        world = replay_scenario(load_scenario(path))
        assert not world.failed

    def test_save_load_roundtrip(self, tmp_path):
        w = RetryFuzzWorld(n=5)
        w.send(0, 1)
        w.run_rounds(2)
        w.drain()
        scenario = w.to_scenario()
        path = save_scenario(scenario, tmp_path / "s.json")
        assert load_scenario(path) == scenario

    def test_bad_payloads_rejected(self, tmp_path):
        from repro.errors import ExperimentError

        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"kind": "nope"}))
        with pytest.raises(ExperimentError):
            load_scenario(p)
        p.write_text("not json")
        with pytest.raises(ExperimentError):
            load_scenario(p)


class TestMachines:
    """Hypothesis layer: tiny deterministic budgets as smoke."""

    def test_ghs_machine_smoke(self):
        from hypothesis.stateful import run_state_machine_as_test

        from repro.fuzz.machine import fuzz_settings, make_machine

        run_state_machine_as_test(
            make_machine("ghs", seed=0),
            settings=fuzz_settings(examples=3, steps=10),
        )

    def test_retry_machine_smoke(self):
        from hypothesis.stateful import run_state_machine_as_test

        from repro.fuzz.machine import fuzz_settings, make_machine

        run_state_machine_as_test(
            make_machine("retry", seed=0),
            settings=fuzz_settings(examples=5, steps=15),
        )

    def test_connt_machine_smoke(self):
        from hypothesis.stateful import run_state_machine_as_test

        from repro.fuzz.machine import fuzz_settings, make_machine

        run_state_machine_as_test(
            make_machine("connt", seed=0),
            settings=fuzz_settings(examples=3, steps=10),
        )

    def test_run_fuzz_catches_seeded_bug(self, tmp_path, monkeypatch):
        """End-to-end: re-introduce the drain bug, watch the fuzzer
        convict it and export a shrunk, replayable counterexample."""
        import repro.fuzz.retry_world as rw
        from repro.fuzz.machine import run_fuzz

        real_drain = rw.drain_reliable

        def buggy_drain(kernel, nodes, *, max_iters=200_000):
            # The pre-fix behaviour: gone-forever holders keep the loop
            # alive until the iteration budget raises.
            fp = kernel.faults
            rnd = kernel.rounds
            holders = [
                nd.id for nd in nodes if nd.retry is not None and nd.retry.pending
            ]
            if holders and all(fp.gone_forever(i, rnd) for i in holders):
                raise ProtocolError(
                    f"fault recovery did not settle in {max_iters} iterations"
                )
            return real_drain(kernel, nodes, max_iters=max_iters)

        monkeypatch.setattr(rw, "drain_reliable", buggy_drain)
        # seed=1 reaches the incriminating schedule within a small
        # derandomized budget (seed offsets explore different corners).
        out = run_fuzz(
            "retry", examples=30, steps=30, seed=1, export_dir=tmp_path
        )
        assert not out.ok
        assert "did not settle" in out.error
        # The shrunk counterexample is exported and replayable.
        assert "scenario" in out.artifacts
        scenario = load_scenario(out.artifacts["scenario"])
        assert scenario["machine"] == "retry"
        monkeypatch.setattr(rw, "drain_reliable", real_drain)
        assert not replay_scenario(scenario).failed  # fixed code: replays clean

    def test_export_failure_artifacts(self, tmp_path):
        from repro.fuzz.repro_export import export_failure

        w = GHSFuzzWorld(n=14, seed=2, drop_rate=0.15, fault_seed=5)
        w.advance(10)
        w.failed = True
        arts = export_failure(
            w, error=ProtocolError("synthetic"), outdir=tmp_path / "out"
        )
        assert set(arts) >= {"scenario", "spec", "error", "trace_diff"}
        spec = json.loads((tmp_path / "out" / "spec.json").read_text())
        assert spec["algorithm"] == "MGHS" and spec["faults"] is not None
        report = (tmp_path / "out" / "trace_diff.txt").read_text()
        assert "traces" in report
