"""Tests for the point-process generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.points import (
    clustered_points,
    perturbed_grid_points,
    poisson_points,
    uniform_points,
)


class TestUniform:
    def test_shape_and_range(self):
        pts = uniform_points(100, seed=0)
        assert pts.shape == (100, 2)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_seeded_reproducible(self):
        assert np.array_equal(uniform_points(50, seed=9), uniform_points(50, seed=9))

    def test_different_seeds_differ(self):
        assert not np.array_equal(uniform_points(50, seed=1), uniform_points(50, seed=2))

    def test_zero_points(self):
        assert uniform_points(0).shape == (0, 2)

    def test_negative_rejected(self):
        with pytest.raises(GeometryError):
            uniform_points(-1)

    def test_generator_accepted(self):
        rng = np.random.default_rng(4)
        pts = uniform_points(10, seed=rng)
        assert pts.shape == (10, 2)

    def test_roughly_uniform(self):
        """Quadrant counts should all be near n/4."""
        pts = uniform_points(4000, seed=0)
        quad = (pts[:, 0] > 0.5).astype(int) * 2 + (pts[:, 1] > 0.5).astype(int)
        counts = np.bincount(quad, minlength=4)
        assert counts.min() > 800 and counts.max() < 1200


class TestPoisson:
    def test_count_near_intensity(self):
        pts = poisson_points(1000.0, seed=0)
        assert 850 <= len(pts) <= 1150  # ~3 sigma

    def test_zero_intensity(self):
        assert len(poisson_points(0.0, seed=0)) == 0

    def test_negative_rejected(self):
        with pytest.raises(GeometryError):
            poisson_points(-5.0)

    def test_in_unit_square(self):
        pts = poisson_points(200.0, seed=1)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_count_varies_with_seed(self):
        counts = {len(poisson_points(100.0, seed=s)) for s in range(10)}
        assert len(counts) > 1


class TestPerturbedGrid:
    def test_exact_count(self):
        pts = perturbed_grid_points(37, seed=0)
        assert pts.shape == (37, 2)

    def test_zero_jitter_is_lattice(self):
        pts = perturbed_grid_points(16, jitter=0.0, seed=0)
        # All coordinates are odd multiples of 1/8 (cell centers of a 4x4 grid).
        frac = pts * 8
        assert np.allclose(frac, np.round(frac))

    def test_jitter_bounds(self):
        with pytest.raises(GeometryError):
            perturbed_grid_points(10, jitter=0.5)
        with pytest.raises(GeometryError):
            perturbed_grid_points(10, jitter=-0.1)

    def test_zero_points(self):
        assert perturbed_grid_points(0).shape == (0, 2)

    def test_near_deterministic_density(self):
        """No empty quadrant even for modest n."""
        pts = perturbed_grid_points(64, seed=3)
        quad = (pts[:, 0] > 0.5).astype(int) * 2 + (pts[:, 1] > 0.5).astype(int)
        assert np.bincount(quad, minlength=4).min() >= 8


class TestClustered:
    def test_shape(self):
        pts = clustered_points(100, seed=0)
        assert pts.shape == (100, 2)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_param_validation(self):
        with pytest.raises(GeometryError):
            clustered_points(10, n_clusters=0)
        with pytest.raises(GeometryError):
            clustered_points(10, spread=0.0)
        with pytest.raises(GeometryError):
            clustered_points(-1)

    def test_clustering_is_tighter_than_uniform(self):
        """Mean nearest-neighbour distance is much smaller than uniform."""
        from repro.rgg.connectivity import kth_nearest_distances

        n = 400
        clustered = kth_nearest_distances(clustered_points(n, spread=0.02, seed=0), 1)
        uniform = kth_nearest_distances(uniform_points(n, seed=0), 1)
        assert clustered.mean() < 0.6 * uniform.mean()
