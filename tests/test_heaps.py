"""Unit and property tests for the indexed min-heap."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.ds.heaps import IndexedMinHeap


class TestBasics:
    def test_push_pop_single(self):
        h = IndexedMinHeap()
        h.push("a", 1.5)
        assert len(h) == 1
        assert "a" in h
        assert h.pop_min() == ("a", 1.5)
        assert len(h) == 0

    def test_pop_order(self):
        h = IndexedMinHeap()
        for item, p in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            h.push(item, p)
        assert [h.pop_min()[0] for _ in range(3)] == ["b", "c", "a"]

    def test_duplicate_push_rejected(self):
        h = IndexedMinHeap()
        h.push("a", 1.0)
        with pytest.raises(ValueError):
            h.push("a", 2.0)

    def test_decrease_key(self):
        h = IndexedMinHeap()
        h.push("a", 5.0)
        h.push("b", 3.0)
        h.decrease("a", 1.0)
        assert h.pop_min() == ("a", 1.0)

    def test_decrease_cannot_increase(self):
        h = IndexedMinHeap()
        h.push("a", 1.0)
        with pytest.raises(ValueError):
            h.decrease("a", 2.0)

    def test_push_or_decrease(self):
        h = IndexedMinHeap()
        assert h.push_or_decrease("a", 5.0) is True
        assert h.push_or_decrease("a", 3.0) is True
        assert h.push_or_decrease("a", 4.0) is False  # would increase
        assert h.priority("a") == 3.0

    def test_peek_does_not_remove(self):
        h = IndexedMinHeap()
        h.push(1, 1.0)
        assert h.peek_min() == (1, 1.0)
        assert len(h) == 1

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().pop_min()

    def test_empty_peek_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().peek_min()

    def test_membership_after_pop(self):
        h = IndexedMinHeap()
        h.push("x", 0.0)
        h.pop_min()
        assert "x" not in h

    def test_integer_items(self):
        h = IndexedMinHeap()
        for i in range(10):
            h.push(i, float(10 - i))
        assert h.pop_min() == (9, 1.0)


class TestProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=100))
    def test_heapsort_matches_sorted(self, prios):
        """Popping everything yields the priorities in sorted order."""
        h = IndexedMinHeap()
        for i, p in enumerate(prios):
            h.push(i, p)
        out = [h.pop_min()[1] for _ in range(len(prios))]
        assert out == sorted(prios)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=50),
        st.data(),
    )
    def test_decrease_preserves_order(self, prios, data):
        """After arbitrary decreases, pops are still sorted."""
        h = IndexedMinHeap()
        current = {}
        for i, p in enumerate(prios):
            h.push(i, p)
            current[i] = p
        n_dec = data.draw(st.integers(0, len(prios)))
        for _ in range(n_dec):
            i = data.draw(st.integers(0, len(prios) - 1))
            newp = data.draw(st.floats(min_value=-100, max_value=current[i]))
            h.decrease(i, newp)
            current[i] = newp
        out = [h.pop_min() for _ in range(len(prios))]
        assert [p for _, p in out] == sorted(current.values())

    @given(st.lists(st.tuples(st.integers(0, 20), st.floats(0, 100)), max_size=60))
    def test_push_or_decrease_tracks_minimum(self, ops):
        """push_or_decrease keeps the minimum priority seen per item."""
        h = IndexedMinHeap()
        best: dict[int, float] = {}
        for item, p in ops:
            h.push_or_decrease(item, p)
            best[item] = min(best.get(item, float("inf")), p)
        got = {}
        while len(h):
            item, p = h.pop_min()
            got[item] = p
        assert got == pytest.approx(best)
