"""Tests for the GHS family (original + modified) on the simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.ghs import run_ghs, run_modified_ghs
from repro.geometry.points import (
    clustered_points,
    perturbed_grid_points,
    uniform_points,
)
from repro.geometry.radius import connectivity_radius
from repro.mst.delaunay import euclidean_mst
from repro.mst.kruskal import kruskal_mst
from repro.mst.quality import same_tree, verify_spanning_tree
from repro.rgg.build import build_rgg
from repro.rgg.components import connected_components, is_connected


def rgg_mst(points, radius):
    """Reference MST (forest) of the RGG at ``radius``."""
    g = build_rgg(points, radius)
    return kruskal_mst(g.n, g.edges, g.lengths)[0]


class TestGHSCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_produces_exact_emst(self, seed):
        pts = uniform_points(150, seed=seed)
        res = run_ghs(pts)
        mst, _ = euclidean_mst(pts)
        if is_connected(build_rgg(pts, res.extras["radius"])):
            assert same_tree(res.tree_edges, mst)

    @pytest.mark.parametrize("n", [2, 3, 5, 10])
    def test_tiny_instances(self, n):
        pts = uniform_points(n, seed=5)
        res = run_ghs(pts, radius=2.0)
        mst, _ = euclidean_mst(pts)
        assert same_tree(res.tree_edges, mst)

    def test_single_node(self):
        res = run_ghs(np.array([[0.5, 0.5]]), radius=1.0)
        assert len(res.tree_edges) == 0
        assert res.energy == pytest.approx(1.0)  # just the HELLO broadcast

    def test_disconnected_gives_msf(self):
        """At a sub-connectivity radius GHS yields the exact minimum
        spanning forest of the RGG."""
        pts = uniform_points(200, seed=1)
        r = 0.6 * connectivity_radius(200)
        res = run_ghs(pts, radius=r)
        expected = rgg_mst(pts, r)
        assert same_tree(res.tree_edges, expected)
        n_comp = len(connected_components(build_rgg(pts, r)))
        assert len(res.tree_edges) == 200 - n_comp

    def test_stress_workloads(self):
        for pts in (
            perturbed_grid_points(120, seed=0),
            clustered_points(120, spread=0.08, seed=0),
        ):
            r = 0.35
            res = run_ghs(pts, radius=r)
            assert same_tree(res.tree_edges, rgg_mst(pts, r))

    def test_phase_count_logarithmic(self):
        pts = uniform_points(400, seed=2)
        res = run_ghs(pts)
        assert res.phases <= np.log2(400) + 3

    def test_each_edge_rejected_at_most_twice(self):
        """The GHS message bound: total REJECTs <= 2|E| over the whole run.

        An intra-fragment edge is killed permanently on its first REJECT,
        but both endpoints may have probed it concurrently within one
        phase before either reply landed — hence per *direction*, i.e. at
        most two rejects per edge (the classical O(|E|) term)."""
        pts = uniform_points(250, seed=3)
        res = run_ghs(pts)
        g = build_rgg(pts, res.extras["radius"])
        assert res.stats.messages_by_kind.get("REJECT", 0) <= 2 * g.m

    def test_message_complexity_bound(self):
        """O(n log n + |E|) with an explicit modest constant."""
        n = 500
        pts = uniform_points(n, seed=4)
        res = run_ghs(pts)
        g = build_rgg(pts, res.extras["radius"])
        bound = 8 * (n * np.log2(n) + g.m)
        assert res.messages <= bound


class TestModifiedGHS:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_tree_as_original(self, seed):
        pts = uniform_points(150, seed=seed)
        a = run_ghs(pts)
        b = run_modified_ghs(pts)
        assert same_tree(a.tree_edges, b.tree_edges)

    def test_no_test_messages(self):
        res = run_modified_ghs(uniform_points(100, seed=0))
        assert "TEST" not in res.stats.messages_by_kind
        assert "ACCEPT" not in res.stats.messages_by_kind
        assert "REJECT" not in res.stats.messages_by_kind

    def test_cheaper_than_original(self):
        """The whole point of the modification (paper Sec. V-A)."""
        pts = uniform_points(300, seed=1)
        orig = run_ghs(pts)
        mod = run_modified_ghs(pts)
        assert mod.energy < orig.energy
        assert mod.messages < orig.messages

    def test_message_complexity_n_phi(self):
        """Modified GHS: O(n phi) messages for phi phases (Sec. V-A)."""
        n = 400
        pts = uniform_points(n, seed=2)
        res = run_modified_ghs(pts)
        assert res.messages <= 6 * n * max(res.phases, 1)

    def test_announce_messages_bounded(self):
        """Each node announces at most once per phase."""
        n = 300
        pts = uniform_points(n, seed=3)
        res = run_modified_ghs(pts)
        assert res.stats.messages_by_kind.get("ANNOUNCE", 0) <= n * res.phases

    def test_disconnected_forest(self):
        pts = uniform_points(150, seed=4)
        r = 0.5 * connectivity_radius(150)
        res = run_modified_ghs(pts, radius=r)
        assert same_tree(res.tree_edges, rgg_mst(pts, r))

    def test_result_metadata(self):
        res = run_modified_ghs(uniform_points(80, seed=5))
        assert res.name == "MGHS"
        assert res.n == 80
        assert res.extras["radius"] == pytest.approx(connectivity_radius(80))
        verify_spanning_tree(80, res.tree_edges, forest_ok=True)

    def test_custom_radius_const(self):
        res = run_modified_ghs(uniform_points(100, seed=6), radius_const=2.5)
        assert res.extras["radius"] == pytest.approx(connectivity_radius(100, 2.5))


class TestEnergyScaling:
    def test_ghs_energy_grows_with_n(self):
        """GHS energy is Theta(log^2 n): strictly growing over the sweep."""
        es = [run_ghs(uniform_points(n, seed=0)).energy for n in (100, 400, 1600)]
        assert es[0] < es[1] < es[2]

    def test_hello_stage_small_fraction(self):
        """Discovery costs n r^2 = O(log n) — a sliver of GHS's total."""
        res = run_ghs(uniform_points(500, seed=1))
        assert res.stats.energy_by_stage["hello"] < 0.2 * res.energy
