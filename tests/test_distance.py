"""Tests for the distance kernels."""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st

from repro.geometry.distance import (
    chebyshev,
    edge_lengths,
    euclidean,
    pairwise_euclidean,
    pairwise_sq_euclidean,
)

unit = st.floats(min_value=0.0, max_value=1.0)
point = st.tuples(unit, unit)


class TestScalar:
    def test_euclidean_known(self):
        assert euclidean([0, 0], [3, 4]) == 5.0

    def test_chebyshev_known(self):
        assert chebyshev([0, 0], [0.3, 0.7]) == 0.7

    def test_euclidean_batch(self):
        p = np.zeros((3, 2))
        q = np.array([[1, 0], [0, 2], [3, 4]])
        assert np.allclose(euclidean(p, q), [1, 2, 5])

    @given(point, point)
    def test_symmetry(self, p, q):
        assert euclidean(p, q) == euclidean(q, p)
        assert chebyshev(p, q) == chebyshev(q, p)

    @given(point, point)
    def test_chebyshev_lower_bounds_euclidean(self, p, q):
        """L_inf <= L_2 <= sqrt(2) L_inf — the constant-factor relation the
        paper's percolation proof relies on."""
        c, e = chebyshev(p, q), euclidean(p, q)
        assert c <= e + 1e-12
        assert e <= np.sqrt(2) * c + 1e-12

    @given(point, point, point)
    def test_triangle_inequality(self, p, q, r):
        assert euclidean(p, r) <= euclidean(p, q) + euclidean(q, r) + 1e-9


class TestPairwise:
    def test_matches_scalar(self):
        rng = np.random.default_rng(0)
        pts = rng.random((20, 2))
        m = pairwise_euclidean(pts)
        for i in range(20):
            for j in range(20):
                assert np.isclose(m[i, j], euclidean(pts[i], pts[j]))

    def test_sq_diagonal_zero(self):
        pts = np.random.default_rng(1).random((10, 2))
        assert (np.diag(pairwise_sq_euclidean(pts)) == 0).all()

    def test_sq_nonnegative(self):
        pts = np.random.default_rng(2).random((30, 2))
        assert (pairwise_sq_euclidean(pts) >= 0).all()

    def test_symmetric(self):
        pts = np.random.default_rng(3).random((15, 2))
        m = pairwise_sq_euclidean(pts)
        assert np.allclose(m, m.T)


class TestEdgeLengths:
    def test_empty(self):
        assert edge_lengths(np.zeros((3, 2)), np.zeros((0, 2))).shape == (0,)

    def test_values(self):
        pts = np.array([[0, 0], [1, 0], [1, 1]])
        e = np.array([[0, 1], [0, 2]])
        assert np.allclose(edge_lengths(pts, e), [1.0, np.sqrt(2)])
