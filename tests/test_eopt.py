"""Tests for the EOPT two-step energy-optimal algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.eopt import giant_size_threshold, run_eopt
from repro.algorithms.ghs import run_ghs
from repro.geometry.points import clustered_points, uniform_points
from repro.geometry.radius import connectivity_radius, giant_radius
from repro.mst.delaunay import euclidean_mst
from repro.mst.kruskal import kruskal_mst
from repro.mst.quality import same_tree, verify_spanning_tree
from repro.rgg.build import build_rgg
from repro.rgg.components import is_connected


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_exact_emst_on_uniform(self, seed):
        pts = uniform_points(250, seed=seed)
        res = run_eopt(pts)
        if is_connected(build_rgg(pts, res.extras["r2"])):
            mst, _ = euclidean_mst(pts)
            assert same_tree(res.tree_edges, mst)

    def test_matches_ghs_tree(self):
        """EOPT and GHS compute the same MST (both exact)."""
        pts = uniform_points(300, seed=5)
        assert same_tree(run_eopt(pts).tree_edges, run_ghs(pts).tree_edges)

    @pytest.mark.parametrize("n", [2, 3, 8, 20, 50])
    def test_small_n_robustness(self, n):
        """Below the asymptotic regime the giant may not exist; EOPT must
        still produce the exact spanning forest of the r2-RGG."""
        pts = uniform_points(n, seed=6)
        res = run_eopt(pts)
        g = build_rgg(pts, res.extras["r2"])
        expected, _ = kruskal_mst(g.n, g.edges, g.lengths)
        assert same_tree(res.tree_edges, expected)

    def test_clustered_workload(self):
        """Highly non-uniform density: Thm 5.2's whp guarantees are void,
        but correctness must survive."""
        pts = clustered_points(300, spread=0.05, seed=0)
        res = run_eopt(pts)
        g = build_rgg(pts, res.extras["r2"])
        expected, _ = kruskal_mst(g.n, g.edges, g.lengths)
        assert same_tree(res.tree_edges, expected)

    def test_forest_on_disconnected(self):
        pts = clustered_points(150, n_clusters=3, spread=0.02, seed=3)
        res = run_eopt(pts)
        verify_spanning_tree(150, res.tree_edges, forest_ok=True)


class TestGiantMechanics:
    def test_giant_found_and_large(self):
        n = 1500
        res = run_eopt(uniform_points(n, seed=0))
        assert res.extras["giant_found"]
        assert res.extras["giant_size"] > 0.5 * n

    def test_threshold_formula(self):
        assert giant_size_threshold(1000, beta=2.0) == pytest.approx(
            2.0 * np.log(1000) ** 2
        )
        assert giant_size_threshold(1) == 1.0

    def test_no_giant_fallback(self):
        """With an impossible threshold no fragment declares giant; the
        run degrades to plain modified GHS at r2 but stays correct."""
        pts = uniform_points(200, seed=1)
        res = run_eopt(pts, beta=1e9)
        assert not res.extras["giant_found"]
        mst, _ = euclidean_mst(pts)
        assert same_tree(res.tree_edges, mst)

    def test_everything_giant_with_tiny_threshold(self):
        """beta ~ 0: the largest fragment is always the giant (the
        multi-giant safeguard demotes the rest)."""
        pts = uniform_points(300, seed=2)
        res = run_eopt(pts, beta=1e-9)
        assert res.extras["giant_found"]
        mst, _ = euclidean_mst(pts)
        assert same_tree(res.tree_edges, mst)
        # With threshold ~0 every fragment qualifies; all but one demoted.
        assert res.extras["giants_demoted"] >= 0

    def test_radii_recorded(self):
        n = 400
        res = run_eopt(uniform_points(n, seed=3))
        assert res.extras["r1"] == pytest.approx(giant_radius(n))
        assert res.extras["r2"] == pytest.approx(connectivity_radius(n))

    def test_absorption_used_at_scale(self):
        """At n large enough for small fragments to exist, step 2 must
        absorb them into the giant (ABSORB messages appear)."""
        found = False
        for seed in range(6):
            res = run_eopt(uniform_points(1200, seed=seed))
            if res.stats.messages_by_kind.get("ABSORB", 0) > 0:
                found = True
                break
        assert found, "no run exercised giant absorption"

    def test_custom_constants(self):
        pts = uniform_points(300, seed=4)
        res = run_eopt(pts, c1=1.0, c2=2.0)
        assert res.extras["r1"] == pytest.approx(giant_radius(300, 1.0))
        assert res.extras["r2"] == pytest.approx(connectivity_radius(300, 2.0))
        g = build_rgg(pts, res.extras["r2"])
        expected, _ = kruskal_mst(g.n, g.edges, g.lengths)
        assert same_tree(res.tree_edges, expected)


class TestEnergy:
    def test_cheaper_than_ghs(self):
        """The headline claim: EOPT << GHS."""
        pts = uniform_points(800, seed=0)
        e_eopt = run_eopt(pts).energy
        e_ghs = run_ghs(pts).energy
        assert e_eopt < e_ghs / 3

    def test_energy_scales_like_log_n(self):
        """Energy/log n stays within a narrow band while n quadruples."""
        ratios = []
        for n in (400, 1600):
            e = np.mean(
                [run_eopt(uniform_points(n, seed=s)).energy for s in range(3)]
            )
            ratios.append(e / np.log(n))
        assert ratios[1] < 2.5 * ratios[0]

    def test_stage_split_recorded(self):
        res = run_eopt(uniform_points(500, seed=1))
        assert res.extras["step1_energy"] > 0
        assert res.extras["step2_energy"] > 0
        assert res.extras["step1_energy"] + res.extras["step2_energy"] == (
            pytest.approx(res.energy)
        )

    def test_step1_messages_cheap(self):
        """Step-1 messages travel at most r1, so per-message energy is
        bounded by r1^2 = c1^2/n."""
        n = 600
        res = run_eopt(uniform_points(n, seed=2))
        step1_msgs = sum(
            v
            for k, v in res.stats.messages_by_stage.items()
            if k.startswith("step1")
        )
        r1 = res.extras["r1"]
        assert res.extras["step1_energy"] <= step1_msgs * r1 * r1 * (1 + 1e-9)
