"""Tests for the centralized MST constructions (Kruskal, Prim, Delaunay)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.geometry.points import clustered_points, perturbed_grid_points, uniform_points
from repro.mst.delaunay import delaunay_edges, euclidean_mst
from repro.mst.kruskal import kruskal_mst
from repro.mst.prim import prim_mst
from repro.mst.quality import tree_cost, verify_spanning_tree
from repro.rgg.build import build_rgg, complete_graph

from tests.conftest import brute_force_mst_cost


class TestKruskal:
    def test_triangle(self):
        edges = np.array([[0, 1], [1, 2], [0, 2]])
        weights = np.array([1.0, 2.0, 3.0])
        t, w = kruskal_mst(3, edges, weights)
        assert set(map(tuple, t)) == {(0, 1), (1, 2)}
        assert list(w) == [1.0, 2.0]

    def test_forest_on_disconnected(self):
        edges = np.array([[0, 1], [2, 3]])
        t, _ = kruskal_mst(4, edges, np.array([1.0, 1.0]))
        assert len(t) == 2
        verify_spanning_tree(4, t, forest_ok=True)

    def test_deterministic_tie_break(self):
        edges = np.array([[0, 1], [1, 2], [0, 2]])
        weights = np.array([1.0, 1.0, 1.0])
        t1, _ = kruskal_mst(3, edges, weights)
        t2, _ = kruskal_mst(3, edges[::-1].copy(), weights)
        assert set(map(tuple, t1)) == set(map(tuple, t2))

    def test_self_loops_ignored(self):
        edges = np.array([[0, 0], [0, 1]])
        t, _ = kruskal_mst(2, edges, np.array([0.1, 1.0]))
        assert set(map(tuple, t)) == {(0, 1)}

    def test_empty(self):
        t, w = kruskal_mst(3, np.zeros((0, 2)), np.zeros(0))
        assert len(t) == 0 and len(w) == 0

    def test_validation(self):
        with pytest.raises(GraphError):
            kruskal_mst(2, np.array([[0, 1]]), np.array([1.0, 2.0]))
        with pytest.raises(GraphError):
            kruskal_mst(2, np.array([[0, 5]]), np.array([1.0]))

    def test_weights_ascending(self):
        g = complete_graph(uniform_points(40, seed=0))
        _, w = kruskal_mst(g.n, g.edges, g.lengths)
        assert (np.diff(w) >= 0).all()


class TestPrim:
    def test_matches_kruskal_cost(self):
        pts = uniform_points(80, seed=1)
        g = build_rgg(pts, 0.3)
        pe, pw = prim_mst(g)
        ke, kw = kruskal_mst(g.n, g.edges, g.lengths)
        assert pw.sum() == pytest.approx(kw.sum())
        assert set(map(tuple, pe)) == set(map(tuple, ke))

    def test_forest_on_disconnected(self):
        pts = uniform_points(100, seed=2)
        g = build_rgg(pts, 0.05)
        e, _ = prim_mst(g)
        verify_spanning_tree(g.n, e, forest_ok=True)
        from repro.rgg.components import connected_components

        n_comp = len(connected_components(g))
        assert len(e) == g.n - n_comp

    def test_empty_graph(self):
        g = build_rgg(np.zeros((0, 2)), 0.1)
        e, w = prim_mst(g)
        assert len(e) == 0


class TestEuclideanMST:
    def test_matches_brute_force_cost(self):
        pts = uniform_points(70, seed=3)
        _, lengths = euclidean_mst(pts)
        assert lengths.sum() == pytest.approx(brute_force_mst_cost(pts))

    def test_matches_complete_graph_kruskal(self):
        pts = uniform_points(50, seed=4)
        de, dl = euclidean_mst(pts)
        g = complete_graph(pts)
        ke, _ = kruskal_mst(g.n, g.edges, g.lengths)
        assert set(map(tuple, de)) == set(map(tuple, ke))

    def test_is_spanning_tree(self):
        pts = uniform_points(200, seed=5)
        e, _ = euclidean_mst(pts)
        verify_spanning_tree(200, e)

    def test_small_inputs(self):
        assert euclidean_mst(np.zeros((0, 2)))[0].shape == (0, 2)
        assert euclidean_mst(np.array([[0.5, 0.5]]))[0].shape == (0, 2)
        e, w = euclidean_mst(np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert len(e) == 1 and w[0] == pytest.approx(1.0)

    def test_three_points(self):
        pts = np.array([[0, 0], [1, 0], [0.5, 0.1]])
        e, _ = euclidean_mst(pts)
        verify_spanning_tree(3, e)

    def test_collinear_points(self):
        """Degenerate (Qhull-breaking) input falls back gracefully."""
        pts = np.stack([np.linspace(0, 1, 10), np.zeros(10)], axis=1)
        e, w = euclidean_mst(pts)
        verify_spanning_tree(10, e)
        assert w.sum() == pytest.approx(1.0)

    def test_duplicate_points(self):
        pts = np.array([[0.5, 0.5], [0.5, 0.5], [0.2, 0.2]])
        e, _ = euclidean_mst(pts)
        verify_spanning_tree(3, e)

    @given(st.integers(0, 2**31 - 1), st.integers(5, 40))
    @settings(max_examples=25, deadline=None)
    def test_property_optimal_cost(self, seed, n):
        """Delaunay-restricted MST cost equals brute-force MST cost."""
        pts = uniform_points(n, seed=seed)
        _, lengths = euclidean_mst(pts)
        assert lengths.sum() == pytest.approx(brute_force_mst_cost(pts))

    def test_works_on_stress_workloads(self):
        for pts in (
            perturbed_grid_points(100, seed=0),
            clustered_points(100, seed=0),
        ):
            e, _ = euclidean_mst(pts)
            verify_spanning_tree(len(pts), e)

    def test_alpha_equivalence(self):
        """The tree minimising sum d also minimises sum d^2 (Sec. II)."""
        pts = uniform_points(60, seed=6)
        e, _ = euclidean_mst(pts)
        g = complete_graph(pts)
        sq_tree, _ = kruskal_mst(g.n, g.edges, g.lengths**2)
        assert tree_cost(pts, e, 2.0) == pytest.approx(tree_cost(pts, sq_tree, 2.0))
        assert set(map(tuple, e)) == set(map(tuple, sq_tree))


class TestDelaunayEdges:
    def test_contains_mst(self):
        pts = uniform_points(100, seed=7)
        dt = set(map(tuple, delaunay_edges(pts)))
        mst, _ = euclidean_mst(pts)
        assert set(map(tuple, mst)) <= dt

    def test_linear_size(self):
        pts = uniform_points(500, seed=8)
        assert len(delaunay_edges(pts)) <= 3 * 500 - 6

    def test_small_inputs(self):
        assert len(delaunay_edges(np.zeros((1, 2)))) == 0
        assert len(delaunay_edges(np.array([[0, 0], [1, 1.0]]))) == 1
        assert len(delaunay_edges(uniform_points(3, seed=0))) == 3
