"""Tests for the experiment harness: config, runner, figures, tables, report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.ascii_plot import ascii_grid, ascii_xy
from repro.experiments.config import BENCH_NS, PAPER_NS, SweepConfig
from repro.experiments.figures import (
    fig1_percolation,
    fig2_potential,
    fig3a_plot,
    fig3a_rows,
    fig3b_plot,
    fig3b_slopes,
)
from repro.experiments.report import format_table
from repro.experiments.runner import run_algorithm, sweep_energy
from repro.experiments.tables import (
    PAPER_TAB1_EDGE_SUMS,
    lower_bound_table,
    tab1_quality,
    thm52_giant,
)
from repro.geometry.points import uniform_points


SMALL = SweepConfig(ns=(50, 100, 200), seeds=(0,))


@pytest.fixture(scope="module")
def small_sweep():
    return sweep_energy(SMALL)


class TestConfig:
    def test_paper_grid_range(self):
        assert PAPER_NS[0] == 50 and PAPER_NS[-1] == 5000

    def test_defaults_valid(self):
        cfg = SweepConfig()
        assert cfg.ns == BENCH_NS
        assert cfg.ghs_radius_const == 1.6
        assert cfg.eopt_c1 == 1.4

    def test_validation(self):
        with pytest.raises(ExperimentError):
            SweepConfig(ns=())
        with pytest.raises(ExperimentError):
            SweepConfig(ns=(1, 100))
        with pytest.raises(ExperimentError):
            SweepConfig(seeds=())
        with pytest.raises(ExperimentError):
            SweepConfig(algorithms=())


class TestRunner:
    def test_dispatch_labels(self):
        pts = uniform_points(60, seed=0)
        for label in ("GHS", "MGHS", "EOPT", "Co-NNT"):
            res = run_algorithm(label, pts)
            assert res.n == 60

    def test_unknown_label(self):
        with pytest.raises(ExperimentError):
            run_algorithm("FOO", uniform_points(10))

    def test_sweep_shapes(self, small_sweep):
        for alg in SMALL.algorithms:
            assert small_sweep.energy[alg].shape == (3, 1)
            assert small_sweep.messages[alg].shape == (3, 1)
        assert list(small_sweep.ns) == [50, 100, 200]

    def test_sweep_means(self, small_sweep):
        m = small_sweep.mean_energy("GHS")
        assert m.shape == (3,)
        assert (m > 0).all()

    def test_expected_energy_ordering(self, small_sweep):
        """GHS > EOPT > Co-NNT at every sweep point (the paper's Fig 3a)."""
        g = small_sweep.mean_energy("GHS")
        e = small_sweep.mean_energy("EOPT")
        c = small_sweep.mean_energy("Co-NNT")
        assert (g > e).all()
        assert (e > c).all()


class TestFigures:
    def test_fig1(self):
        r = fig1_percolation(n=600, seed=0)
        assert 0.5 < r.giant_fraction <= 1.0
        assert "#" in r.good_cluster_picture

    def test_fig2_lemma_checks(self):
        r = fig2_potential(n=800, seed=0)
        assert r.min_potential_angle >= 0.5
        assert r.n * r.mean_sq_connect_distance <= 4.0  # Thm 6.1
        assert r.mean_sq_connect_distance <= r.expected_sq_bound  # Lemma 6.2
        assert r.lemma63_constant < 3.0  # Lemma 6.3

    def test_fig2_validation(self):
        with pytest.raises(ExperimentError):
            fig2_potential(n=1)

    def test_fig3a_rows(self, small_sweep):
        rows = fig3a_rows(small_sweep)
        assert len(rows) == 3
        assert rows[0][0] == 50
        assert len(rows[0]) == 1 + len(SMALL.algorithms)

    def test_fig3b_slopes_ordering(self, small_sweep):
        fits = fig3b_slopes(small_sweep, min_n=50)
        assert fits["GHS"].slope > fits["EOPT"].slope > fits["Co-NNT"].slope - 0.5

    def test_fig3b_min_n_guard(self, small_sweep):
        with pytest.raises(ExperimentError):
            fig3b_slopes(small_sweep, min_n=10_000)

    def test_plots_render(self, small_sweep):
        assert "Fig 3(a)" in fig3a_plot(small_sweep)
        assert "loglog n" in fig3b_plot(small_sweep, min_n=50)


class TestTables:
    def test_tab1_close_to_paper(self):
        """The measured Sec. VII numbers land near the published ones."""
        rows = tab1_quality(ns=(1000,), seed=0)
        row = rows[0]
        paper_connt, paper_mst = PAPER_TAB1_EDGE_SUMS[1000]
        assert row.connt_edge_sum == pytest.approx(paper_connt, rel=0.10)
        assert row.mst_edge_sum == pytest.approx(paper_mst, rel=0.10)
        assert row.connt_sq_sum < 1.0
        assert 1.0 <= row.length_ratio < 1.25

    def test_thm52_rows(self):
        rows = thm52_giant(ns=(400, 800), seed=0)
        assert [r.n for r in rows] == [400, 800]
        for r in rows:
            assert 0 < r.giant_fraction <= 1
            assert r.second_component < 400

    def test_lower_bound_rows(self):
        rows = lower_bound_table(ns=(500,), seed=0)
        assert rows[0].l_mst > 0.1
        assert rows[0].lemma41_b > 0
        with pytest.raises(ExperimentError):
            lower_bound_table(ns=(4,))


class TestAsciiPlot:
    def test_xy_basic(self):
        out = ascii_xy({"s": ([1, 2, 3], [1, 4, 9])}, title="T")
        assert "T" in out and "o=s" in out

    def test_xy_multi_series_glyphs(self):
        out = ascii_xy({"a": ([0, 1], [0, 1]), "b": ([0, 1], [1, 0])})
        assert "o=a" in out and "x=b" in out

    def test_xy_empty_rejected(self):
        with pytest.raises(ExperimentError):
            ascii_xy({})

    def test_grid_renders(self):
        out = ascii_grid(np.eye(4, dtype=int))
        assert out.count("#") == 4

    def test_grid_downsamples(self):
        out = ascii_grid(np.ones((200, 200), dtype=int), max_side=50)
        assert len(out.splitlines()) <= 70

    def test_grid_validation(self):
        with pytest.raises(ExperimentError):
            ascii_grid(np.zeros(5))


class TestReport:
    def test_plain_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "bb" in lines[0]

    def test_markdown_table(self):
        out = format_table(["x"], [[1]], markdown=True)
        assert out.startswith("| x")
        assert "|-" in out.splitlines()[1]

    def test_width_mismatch(self):
        with pytest.raises(ExperimentError):
            format_table(["a"], [[1, 2]])

    def test_empty_headers(self):
        with pytest.raises(ExperimentError):
            format_table([], [])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000012345]])
        assert "1.23e-05" in out
