"""Tests for incremental MST repair under node failures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_modified_ghs
from repro.applications.maintenance import repair_after_failures, surviving_forest
from repro.errors import GraphError
from repro.geometry.points import uniform_points
from repro.mst.kruskal import kruskal_mst
from repro.mst.quality import tree_cost, verify_spanning_tree
from repro.rgg.build import build_rgg


@pytest.fixture(scope="module")
def built():
    pts = uniform_points(300, seed=0)
    res = run_eopt(pts)
    return pts, res


class TestSurvivingForest:
    def test_relabeling(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        survivors, old_to_new, forest = surviving_forest(4, edges, np.array([1]))
        assert list(survivors) == [0, 2, 3]
        assert old_to_new[1] == -1
        # Only edge (2,3) survives, relabeled to (1,2).
        assert forest.tolist() == [[1, 2]]

    def test_no_failures(self):
        edges = np.array([[0, 1]])
        survivors, _, forest = surviving_forest(2, edges, np.zeros(0, dtype=int))
        assert len(survivors) == 2 and len(forest) == 1

    def test_out_of_range(self):
        with pytest.raises(GraphError):
            surviving_forest(3, np.array([[0, 1]]), np.array([5]))


class TestRepair:
    def test_repair_spans_survivors(self, built):
        pts, res = built
        rng = np.random.default_rng(1)
        failed = rng.choice(300, size=15, replace=False)
        rep = repair_after_failures(pts, res.tree_edges, failed)
        verify_spanning_tree(rep.n, rep.tree_edges, forest_ok=True)
        assert rep.n == 285
        assert rep.extras["n_failed"] == 15

    def test_repair_quality_near_optimal(self, built):
        """The repaired tree's cost is within ~2% of the from-scratch MST
        of the survivors."""
        pts, res = built
        rng = np.random.default_rng(2)
        failed = rng.choice(300, size=10, replace=False)
        rep = repair_after_failures(pts, res.tree_edges, failed)
        sub_pts = pts[rep.extras["survivors"]]
        g = build_rgg(sub_pts, rep.extras["radius"])
        opt, _ = kruskal_mst(g.n, g.edges, g.lengths)
        assert len(rep.tree_edges) == len(opt)
        ratio = tree_cost(sub_pts, rep.tree_edges) / tree_cost(sub_pts, opt)
        assert 1.0 - 1e-12 <= ratio < 1.05

    def test_repair_much_cheaper_than_rebuild(self, built):
        """The point of incremental maintenance: repairing after a few
        failures costs a fraction of rebuilding from scratch."""
        pts, res = built
        rng = np.random.default_rng(3)
        failed = rng.choice(300, size=6, replace=False)
        rep = repair_after_failures(pts, res.tree_edges, failed)
        rebuild = run_modified_ghs(pts[rep.extras["survivors"]])
        # The HELLO discovery is common to both; compare the GHS stages.
        repair_ghs = rep.stats.energy_by_stage["repair:ghs"]
        rebuild_ghs = rebuild.stats.energy_by_stage["phases"]
        assert repair_ghs < 0.5 * rebuild_ghs
        assert rep.phases <= rebuild.phases

    def test_zero_failures_one_phase(self, built):
        """Nothing failed: the single fragment discovers it has no MOE in
        one phase and halts."""
        pts, res = built
        rep = repair_after_failures(pts, res.tree_edges, np.zeros(0, dtype=int))
        assert rep.phases == 1
        assert rep.extras["initial_fragments"] == 1
        assert len(rep.tree_edges) == 299

    def test_massive_failure(self, built):
        """Half the network dies: repair still yields a valid forest."""
        pts, res = built
        rng = np.random.default_rng(4)
        failed = rng.choice(300, size=150, replace=False)
        rep = repair_after_failures(pts, res.tree_edges, failed)
        verify_spanning_tree(rep.n, rep.tree_edges, forest_ok=True)

    def test_survivor_ids_mapping(self, built):
        """``extras["survivor_ids"]`` is the explicit dense-to-original
        mapping (``survivor_ids[new_id] = original_id``), pinned so the
        re-indexing contract cannot silently regress again."""
        pts, res = built
        failed = np.array([3, 100, 299])
        rep = repair_after_failures(pts, res.tree_edges, failed)
        ids = rep.extras["survivor_ids"]
        assert ids.shape == (297,)
        # Dense, sorted original ids with exactly the failed ones missing.
        expected = np.setdiff1d(np.arange(300), failed)
        assert np.array_equal(ids, expected)
        # Must stay in lockstep with the historical alias.
        assert np.array_equal(ids, rep.extras["survivors"])
        # Every repaired-tree endpoint maps back to an alive original id.
        assert not np.isin(ids[rep.tree_edges], failed).any()

    def test_failed_leader_is_survivable(self, built):
        """Killing the old fragment leader (max id) must not matter — the
        repair elects fresh leaders."""
        pts, res = built
        rep = repair_after_failures(pts, res.tree_edges, np.array([299]))
        verify_spanning_tree(rep.n, rep.tree_edges, forest_ok=True)
        assert rep.n == 299
