"""Protocol-level tests of the GHS state machine on crafted geometries,
plus the post-run state audit on realistic runs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.base import collect_tree_edges
from repro.algorithms.ghs.audit import audit_ghs_state
from repro.algorithms.ghs.driver import hello_round, run_ghs_phases
from repro.algorithms.ghs.node import NO_EDGE, GHSNode
from repro.errors import ProtocolError
from repro.geometry.points import uniform_points
from repro.geometry.radius import connectivity_radius
from repro.sim.kernel import SynchronousKernel


def make_run(points, radius, *, use_tests=False, announce=True):
    k = SynchronousKernel(np.asarray(points, dtype=float), max_radius=radius)
    k.add_nodes(
        lambda i, ctx: GHSNode(i, ctx, use_tests=use_tests, announce=announce)
    )
    k.start()
    hello_round(k, radius)
    return k


class TestTwoNodes:
    """The minimal core: two singletons must reciprocally CONNECT and the
    larger id must emerge as the (halted) leader."""

    @pytest.mark.parametrize("use_tests", [False, True])
    def test_core_formation(self, use_tests):
        pts = [[0.2, 0.5], [0.6, 0.5]]
        k = make_run(pts, 0.5, use_tests=use_tests)
        phases = run_ghs_phases(k, k.nodes)
        assert phases == 2  # merge phase + halt-discovery phase
        a, b = k.nodes
        assert a.tree_edges == {1} and b.tree_edges == {0}
        # Higher id wins the core; it is the final (halted) leader.
        assert b.leader and not a.leader
        assert b.halted
        assert a.fid == b.fid == 1

    def test_connect_energy_charged_on_moe(self):
        pts = [[0.2, 0.5], [0.6, 0.5]]
        k = make_run(pts, 0.5)
        run_ghs_phases(k, k.nodes)
        stats = k.stats()
        # Two CONNECTs (one each way over the 0.4 edge).
        assert stats.messages_by_kind["CONNECT"] == 2
        assert stats.energy_by_kind["CONNECT"] == pytest.approx(2 * 0.16)


class TestChain:
    """Four nodes in a line with distinct gaps: the merge schedule is
    fully predictable."""

    def test_tree_and_orientation(self):
        # Gaps: 0.10, 0.12, 0.14 -> phase 1 merges (0,1) via min edge and
        # (1,2)? No: MOEs: node0->1, 1->0, 2->1, 3->2. Cluster {0,1,2,3}
        # with core (0,1).
        pts = [[0.10, 0.5], [0.20, 0.5], [0.32, 0.5], [0.46, 0.5]]
        k = make_run(pts, 0.2)
        phases = run_ghs_phases(k, k.nodes)
        edges = collect_tree_edges((nd.id, nd.tree_edges) for nd in k.nodes)
        assert {tuple(e) for e in edges} == {(0, 1), (1, 2), (2, 3)}
        assert phases == 2  # everything merges into one fragment in phase 1
        audit_ghs_state(k.nodes)
        # Fragment id = core winner = 1 (core edge (0,1), higher id 1).
        assert all(nd.fid == 1 for nd in k.nodes)

    def test_two_cores_then_merge(self):
        # Gaps: 0.10, 0.30, 0.10 -> phase 1: cores (0,1) and (2,3);
        # phase 2: fragments joined by the middle edge.
        pts = [[0.10, 0.5], [0.20, 0.5], [0.50, 0.5], [0.60, 0.5]]
        k = make_run(pts, 0.35)
        phases = run_ghs_phases(k, k.nodes)
        edges = {tuple(e) for e in
                 collect_tree_edges((nd.id, nd.tree_edges) for nd in k.nodes)}
        assert edges == {(0, 1), (2, 3), (1, 2)}
        assert phases == 3
        audit_ghs_state(k.nodes)


class TestIsolation:
    def test_isolated_node_halts_alone(self):
        pts = [[0.1, 0.1], [0.9, 0.9]]
        k = make_run(pts, 0.2)
        phases = run_ghs_phases(k, k.nodes)
        assert phases == 1
        for nd in k.nodes:
            assert nd.halted and nd.leader
            assert nd.tree_edges == set()
        audit_ghs_state(k.nodes)


class TestWakeGuards:
    def test_initiate_on_non_leader_raises(self):
        pts = [[0.2, 0.5], [0.6, 0.5]]
        k = make_run(pts, 0.5)
        run_ghs_phases(k, k.nodes)
        with pytest.raises(ProtocolError):
            k.nodes[0].on_wake("initiate", (99,))  # node 0 lost leadership

    def test_unknown_wake_raises(self):
        pts = [[0.2, 0.5], [0.6, 0.5]]
        k = make_run(pts, 0.5)
        with pytest.raises(ProtocolError):
            k.nodes[0].on_wake("bogus")

    def test_unknown_message_raises(self):
        from repro.sim.message import Message

        pts = [[0.2, 0.5], [0.6, 0.5]]
        k = make_run(pts, 0.5)
        with pytest.raises(ProtocolError):
            k.nodes[0].on_message(Message("NOPE", 1, 0, (), 0.1), 0.1)

    def test_size_wake_on_non_leader_raises(self):
        pts = [[0.2, 0.5], [0.6, 0.5]]
        k = make_run(pts, 0.5)
        run_ghs_phases(k, k.nodes)
        with pytest.raises(ProtocolError):
            k.nodes[0].on_wake("size")


class TestSizeCensus:
    def test_chain_size(self):
        pts = [[0.1, 0.5], [0.2, 0.5], [0.32, 0.5], [0.46, 0.5]]
        k = make_run(pts, 0.2)
        run_ghs_phases(k, k.nodes)
        leader = next(nd for nd in k.nodes if nd.leader)
        k.wake([leader.id], "size")
        k.run_until_quiescent()
        assert leader.fragment_size == 4

    def test_singleton_size(self):
        pts = [[0.1, 0.1], [0.9, 0.9]]
        k = make_run(pts, 0.2)
        run_ghs_phases(k, k.nodes)
        leaders = [nd for nd in k.nodes if nd.leader]
        k.wake([nd.id for nd in leaders], "size")
        k.run_until_quiescent()
        assert all(nd.fragment_size == 1 for nd in leaders)

    def test_size_message_count(self):
        """Census = one SIZE_REQ + one SIZE_RESP per tree edge."""
        n = 50
        pts = uniform_points(n, seed=0)
        r = connectivity_radius(n)
        k = make_run(pts, r)
        run_ghs_phases(k, k.nodes)
        leader = next(nd for nd in k.nodes if nd.leader)
        before = k.stats().messages_total
        k.wake([leader.id], "size")
        k.run_until_quiescent()
        delta = k.stats().messages_total - before
        assert delta == 2 * (n - 1)
        assert leader.fragment_size == n


class TestGiantDeclaration:
    def test_declare_giant_floods_whole_fragment(self):
        pts = uniform_points(40, seed=1)
        k = make_run(pts, connectivity_radius(40))
        run_ghs_phases(k, k.nodes)
        leader = next(nd for nd in k.nodes if nd.leader)
        k.wake([leader.id], "declare_giant")
        k.run_until_quiescent()
        assert all(nd.passive and nd.is_giant for nd in k.nodes)
        audit_ghs_state(k.nodes)

    def test_passive_node_absorbs_connect(self):
        """A CONNECT into a passive fragment triggers ABSORB with its id."""
        pts = [[0.2, 0.5], [0.6, 0.5], [0.61, 0.5]]
        k = make_run(pts, 0.05)  # nobody in range: three singletons
        run_ghs_phases(k, k.nodes)
        k.set_max_radius(1.0)
        hello_round(k, 1.0)
        # Declare node 2's singleton fragment the "giant".
        k.wake([2], "declare_giant")
        k.run_until_quiescent()
        k.wake([0, 1], "activate")
        run_ghs_phases(k, k.nodes, start_phase=10)
        # Everyone ends up in the giant's fragment, absorbed.
        assert all(nd.fid == 2 for nd in k.nodes)
        assert all(nd.passive for nd in k.nodes)
        audit_ghs_state(k.nodes)


class TestEdgeKey:
    def test_key_is_symmetric(self):
        pts = [[0.2, 0.5], [0.6, 0.5]]
        k = make_run(pts, 0.5)
        a, b = k.nodes
        assert a._edge_key(1, 0.4) == b._edge_key(0, 0.4)

    def test_no_edge_sentinel_orders_last(self):
        assert (0.1, 0, 1) < NO_EDGE
        assert not NO_EDGE < NO_EDGE


class TestAuditOnRealRuns:
    @pytest.mark.parametrize("use_tests", [False, True])
    def test_audit_clean_after_full_run(self, use_tests):
        n = 150
        pts = uniform_points(n, seed=2)
        r = connectivity_radius(n)
        k = make_run(pts, r, use_tests=use_tests)
        run_ghs_phases(k, k.nodes)
        summary = audit_ghs_state(k.nodes)
        assert summary["n_fragments"] == 1
        assert summary["n_tree_edges"] == n - 1
        assert summary["n_leaders"] == 1

    def test_audit_clean_after_eopt(self):
        from repro.algorithms.eopt import run_eopt  # noqa: F401 - sanity import

        # Re-run EOPT's phases manually to keep node handles.
        n = 300
        pts = uniform_points(n, seed=3)
        from repro.algorithms.eopt.runner import run_eopt as _run

        res = _run(pts)
        assert res.extras["n_fragments_final"] == 1

    @given(st.integers(0, 2**31 - 1), st.integers(2, 50), st.floats(0.05, 0.6))
    @settings(max_examples=15, deadline=None)
    def test_audit_property(self, seed, n, radius):
        pts = uniform_points(n, seed=seed)
        k = make_run(pts, radius)
        run_ghs_phases(k, k.nodes)
        audit_ghs_state(k.nodes)

    def test_audit_detects_asymmetry(self):
        pts = [[0.2, 0.5], [0.6, 0.5]]
        k = make_run(pts, 0.5)
        run_ghs_phases(k, k.nodes)
        k.nodes[0].tree_edges.discard(1)  # corrupt
        with pytest.raises(ProtocolError):
            audit_ghs_state(k.nodes)

    def test_audit_detects_mixed_fids(self):
        pts = [[0.2, 0.5], [0.6, 0.5]]
        k = make_run(pts, 0.5)
        run_ghs_phases(k, k.nodes)
        k.nodes[0].fid = 0  # corrupt: fragment id must be uniform
        with pytest.raises(ProtocolError):
            audit_ghs_state(k.nodes)

    def test_audit_detects_double_leader(self):
        pts = [[0.2, 0.5], [0.6, 0.5]]
        k = make_run(pts, 0.5)
        run_ghs_phases(k, k.nodes)
        k.nodes[0].leader = True  # corrupt
        with pytest.raises(ProtocolError):
            audit_ghs_state(k.nodes)
