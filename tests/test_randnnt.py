"""Tests for the Rand-NNT baseline ([14, 15] in the paper)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.connt import run_connt
from repro.algorithms.eopt import run_eopt
from repro.algorithms.randnnt import run_randnnt
from repro.geometry.points import uniform_points
from repro.mst.delaunay import euclidean_mst
from repro.mst.nnt import nearest_neighbor_tree
from repro.mst.quality import same_tree, tree_cost, verify_spanning_tree


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_spanning_tree(self, seed):
        pts = uniform_points(200, seed=seed)
        res = run_randnnt(pts)
        verify_spanning_tree(200, res.tree_edges)

    def test_matches_centralized_id_rank_nnt(self):
        """Rand-NNT with id ranks == centralized NNT under the identity
        permutation as ranks."""
        pts = uniform_points(150, seed=3)
        res = run_randnnt(pts)
        expected, _ = nearest_neighbor_tree(pts, ranks=np.arange(150))
        assert same_tree(res.tree_edges, expected)

    def test_unconnected_is_max_id(self):
        pts = uniform_points(80, seed=4)
        res = run_randnnt(pts)
        assert res.extras["unconnected_nodes"] == [79]

    @pytest.mark.parametrize("n", [1, 2, 3, 10])
    def test_tiny(self, n):
        res = run_randnnt(uniform_points(n, seed=5))
        verify_spanning_tree(n, res.tree_edges)

    def test_no_coordinates_needed(self):
        """Rand-NNT must run on a coordinate-blind kernel (unlike Co-NNT):
        the node code never touches ctx.coords."""
        pts = uniform_points(60, seed=6)
        res = run_randnnt(pts)  # kernel built without expose_coordinates
        assert len(res.tree_edges) == 59

    @given(st.integers(0, 2**31 - 1), st.integers(1, 60))
    @settings(max_examples=15, deadline=None)
    def test_property_spanning(self, seed, n):
        res = run_randnnt(uniform_points(n, seed=seed))
        verify_spanning_tree(n, res.tree_edges)


class TestPositioning:
    """The paper's Related-Work landscape: GHS > Rand-NNT ~ EOPT on energy;
    exact > Co-NNT > Rand-NNT on quality."""

    def test_energy_logarithmic_not_constant(self):
        """Rand-NNT energy grows (roughly log n) — unlike Co-NNT's O(1)."""
        e = {
            n: np.mean(
                [run_randnnt(uniform_points(n, seed=s)).energy for s in range(3)]
            )
            for n in (200, 3200)
        }
        c = {
            n: np.mean(
                [run_connt(uniform_points(n, seed=s)).energy for s in range(3)]
            )
            for n in (200, 3200)
        }
        # Co-NNT stays flat; Rand-NNT is clearly above it and growing.
        assert e[3200] > c[3200] * 1.5
        assert e[3200] > e[200]

    def test_energy_same_order_as_eopt(self):
        """Both are O(log n); Rand-NNT should be within a small factor."""
        pts = uniform_points(1000, seed=0)
        e_rand = run_randnnt(pts).energy
        e_eopt = run_eopt(pts).energy
        assert e_rand < 5 * e_eopt
        assert e_eopt < 5 * e_rand

    def test_quality_worse_than_connt(self):
        """Random ranks ignore geometry: the tree is strictly worse than
        the diagonal-rank NNT on cost (the price of coordinate-freeness)."""
        pts = uniform_points(1000, seed=1)
        mst, _ = euclidean_mst(pts)
        opt = tree_cost(pts, mst)
        rand_ratio = tree_cost(pts, run_randnnt(pts).tree_edges) / opt
        co_ratio = tree_cost(pts, run_connt(pts).tree_edges) / opt
        assert rand_ratio > co_ratio
        # O(log n) approximation: comfortably under log(1000) ~ 6.9.
        assert rand_ratio < np.log(1000)

    def test_messages_linear(self):
        for n in (200, 800):
            res = run_randnnt(uniform_points(n, seed=2))
            assert res.messages <= 20 * n
