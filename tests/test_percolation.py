"""Tests for the percolation analytics (Thm 5.2 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.points import uniform_points
from repro.geometry.radius import giant_radius
from repro.percolation.cells import expected_cell_count, good_cell_mask, occupancy_grid
from repro.percolation.giant import (
    analyze_percolation,
    giant_fraction,
    small_region_node_counts,
)


class TestCells:
    def test_grid_side_is_half_radius(self):
        g = occupancy_grid(uniform_points(100, seed=0), 0.2)
        assert g.side == pytest.approx(0.1)

    def test_large_radius_clipped(self):
        g = occupancy_grid(uniform_points(10, seed=0), 3.0)
        assert g.side == 1.0

    def test_invalid_radius(self):
        with pytest.raises(GeometryError):
            occupancy_grid(uniform_points(10, seed=0), 0.0)

    def test_expected_cell_count(self):
        # r = sqrt(c/n) -> expected = c/4.
        n, c = 1000, 2.0
        r = np.sqrt(c / n)
        assert expected_cell_count(n, r) == pytest.approx(c / 4)

    def test_counts_sum_to_n(self):
        pts = uniform_points(500, seed=1)
        g = occupancy_grid(pts, 0.05)
        assert g.counts.sum() == 500

    def test_good_cell_default_threshold(self):
        """Default threshold is half the expected occupancy, floored at 1."""
        pts = uniform_points(400, seed=2)
        g = occupancy_grid(pts, giant_radius(400, 4.0))  # expected = 4 per cell
        good = good_cell_mask(g)
        assert good.dtype == bool
        # threshold = max(expected/2, 1) = 2
        assert (good == (g.counts >= 2)).all()

    def test_good_cell_explicit_threshold(self):
        pts = uniform_points(100, seed=3)
        g = occupancy_grid(pts, 0.2)
        assert (good_cell_mask(g, 1) == (g.counts >= 1)).all()

    def test_empty_cells_never_good(self):
        pts = uniform_points(50, seed=4)
        g = occupancy_grid(pts, 0.1)
        good = good_cell_mask(g, threshold=0.0)
        assert not good[g.counts == 0].any()


class TestGiant:
    def test_giant_fraction_full_at_large_radius(self):
        assert giant_fraction(uniform_points(100, seed=0), 2.0) == 1.0

    def test_giant_fraction_small_at_tiny_radius(self):
        assert giant_fraction(uniform_points(100, seed=0), 1e-6) == pytest.approx(0.01)

    def test_empty_points(self):
        assert giant_fraction(np.zeros((0, 2)), 0.5) == 0.0

    def test_thm52_giant_exists(self):
        """At r = 1.4 sqrt(1/n) a giant of >= alpha*n nodes exists
        (Lemma 5.3 allows any alpha in (1/4, 1/2); empirically ~0.9)."""
        for seed in range(3):
            pts = uniform_points(2000, seed=seed)
            assert giant_fraction(pts, giant_radius(2000)) > 0.5

    def test_thm52_small_components(self):
        """Non-giant components are O(log^2 n) nodes."""
        n = 3000
        pts = uniform_points(n, seed=1)
        rep = analyze_percolation(pts, giant_radius(n))
        assert rep.max_non_giant_component <= 2.5 * np.log(n) ** 2

    def test_report_consistency(self):
        n = 1000
        pts = uniform_points(n, seed=2)
        rep = analyze_percolation(pts, giant_radius(n))
        assert rep.n == n
        assert rep.component_sizes.sum() == n
        assert 0 <= rep.good_cell_fraction <= 1
        assert rep.giant_fraction == rep.component_sizes[0] / n

    def test_beta_constant_bounded_across_n(self):
        """Thm 5.2: beta = max small component / log^2 n stays bounded."""
        betas = []
        for n in (500, 1000, 2000):
            rep = analyze_percolation(uniform_points(n, seed=3), giant_radius(n))
            betas.append(rep.small_region_bound_constant())
        assert max(betas) < 5.0

    def test_supercritical_cells_have_giant_cluster(self):
        """With c large, the good-cell lattice itself percolates
        (the regime the proof of Thm 5.2 works in)."""
        n = 4000
        pts = uniform_points(n, seed=4)
        rep = analyze_percolation(pts, giant_radius(n, c=4.0))
        # Largest good cluster covers a constant fraction of all cells.
        grid_cells = int(np.ceil(1.0 / (rep.cell_side))) ** 2
        assert rep.largest_good_cluster_cells > 0.3 * grid_cells

    def test_no_good_cells_single_region(self):
        """With an absurd threshold, everything is one small region."""
        pts = uniform_points(200, seed=5)
        grid = occupancy_grid(pts, giant_radius(200))
        good = good_cell_mask(grid, threshold=10**6)
        regions, n_clusters, largest = small_region_node_counts(grid, good)
        assert n_clusters == 0
        assert largest == 0
        assert regions.sum() == 200

    def test_all_good_cells_no_small_regions(self):
        """A dense instance where every cell is good: complement is empty."""
        from repro.geometry.points import perturbed_grid_points

        pts = perturbed_grid_points(1024, jitter=0.2, seed=6)
        grid = occupancy_grid(pts, 4 / 32)  # side 1/16 -> 4 pts expected
        good = good_cell_mask(grid, threshold=1)
        regions, n_clusters, largest = small_region_node_counts(grid, good)
        assert n_clusters == 1
        assert regions.sum() == 0 or regions.max() == 0
