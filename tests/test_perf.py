"""Unit tests for the opt-in perf instrumentation registry."""

from __future__ import annotations

import pytest

from repro.geometry.points import uniform_points
from repro.perf import PerfRegistry, _NULL_TIMED, perf
from repro.sim.kernel import SynchronousKernel
from repro.sim.node import NodeProcess


@pytest.fixture(autouse=True)
def _clean_global_registry():
    perf.disable()
    perf.reset()
    yield
    perf.disable()
    perf.reset()


def test_disabled_timed_is_shared_noop():
    reg = PerfRegistry()
    assert reg.timed("x") is _NULL_TIMED
    with reg.timed("x"):
        pass
    assert reg.timers == {}
    assert reg.snapshot() == {"timers": {}, "counters": {}}
    assert reg.report() == "(no perf data recorded)"


def test_timers_and_counters_accumulate():
    reg = PerfRegistry()
    reg.enable()
    for _ in range(3):
        with reg.timed("phase"):
            pass
    reg.add("events")
    reg.add("events", 4)
    snap = reg.snapshot()
    assert snap["timers"]["phase"]["calls"] == 3
    assert snap["timers"]["phase"]["total_s"] >= 0.0
    assert snap["counters"] == {"events": 5}
    assert "phase" in reg.report() and "events" in reg.report()
    reg.reset()
    assert reg.snapshot() == {"timers": {}, "counters": {}}
    assert reg.enabled  # reset keeps the switch


class _Beacon(NodeProcess):
    def on_start(self):
        self.ctx.local_broadcast(self.ctx.max_radius, "HELLO")


def test_kernel_hooks_record_rounds_and_deliveries():
    pts = uniform_points(80, seed=0)
    perf.enable()
    kernel = SynchronousKernel(pts, max_radius=0.3)
    kernel.add_nodes(lambda i, ctx: _Beacon(i, ctx))
    kernel.start()
    kernel.run_until_quiescent()
    snap = perf.snapshot()
    assert snap["counters"]["kernel.rounds"] == 1
    assert snap["counters"]["kernel.deliveries"] > 0
    assert snap["counters"]["kernel.nbr_table_builds"] == 1
    assert snap["counters"]["kernel.nbr_table_entries"] > 0
    assert snap["timers"]["kernel.nbr_table_build"]["calls"] == 1


def test_kernel_silent_when_disabled():
    pts = uniform_points(50, seed=1)
    kernel = SynchronousKernel(pts, max_radius=0.3)
    kernel.add_nodes(lambda i, ctx: _Beacon(i, ctx))
    kernel.start()
    kernel.run_until_quiescent()
    assert perf.snapshot() == {"timers": {}, "counters": {}}
