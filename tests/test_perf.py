"""Unit tests for the opt-in perf instrumentation registry."""

from __future__ import annotations

import pytest

from repro.geometry.points import uniform_points
from repro.perf import PerfRegistry, _NULL_TIMED, perf
from repro.sim.kernel import SynchronousKernel
from repro.sim.node import NodeProcess


@pytest.fixture(autouse=True)
def _clean_global_registry():
    perf.disable()
    perf.reset()
    yield
    perf.disable()
    perf.reset()


def test_disabled_timed_is_shared_noop():
    reg = PerfRegistry()
    assert reg.timed("x") is _NULL_TIMED
    with reg.timed("x"):
        pass
    assert reg.timers == {}
    assert reg.snapshot() == {"timers": {}, "counters": {}}
    assert reg.report() == "(no perf data recorded)"


def test_timers_and_counters_accumulate():
    reg = PerfRegistry()
    reg.enable()
    for _ in range(3):
        with reg.timed("phase"):
            pass
    reg.add("events")
    reg.add("events", 4)
    snap = reg.snapshot()
    assert snap["timers"]["phase"]["calls"] == 3
    assert snap["timers"]["phase"]["total_s"] >= 0.0
    assert snap["counters"] == {"events": 5}
    assert "phase" in reg.report() and "events" in reg.report()
    reg.reset()
    assert reg.snapshot() == {"timers": {}, "counters": {}}
    assert reg.enabled  # reset keeps the switch


class _Beacon(NodeProcess):
    def on_start(self):
        self.ctx.local_broadcast(self.ctx.max_radius, "HELLO")


def test_kernel_hooks_record_rounds_and_deliveries():
    pts = uniform_points(80, seed=0)
    perf.enable()
    kernel = SynchronousKernel(pts, max_radius=0.3)
    kernel.add_nodes(lambda i, ctx: _Beacon(i, ctx))
    kernel.start()
    kernel.run_until_quiescent()
    snap = perf.snapshot()
    assert snap["counters"]["kernel.rounds"] == 1
    assert snap["counters"]["kernel.deliveries"] > 0
    assert snap["counters"]["kernel.nbr_table_builds"] == 1
    assert snap["counters"]["kernel.nbr_table_entries"] > 0
    assert snap["timers"]["kernel.nbr_table_build"]["calls"] == 1


def test_kernel_silent_when_disabled():
    pts = uniform_points(50, seed=1)
    kernel = SynchronousKernel(pts, max_radius=0.3)
    kernel.add_nodes(lambda i, ctx: _Beacon(i, ctx))
    kernel.start()
    kernel.run_until_quiescent()
    assert perf.snapshot() == {"timers": {}, "counters": {}}


def test_add_is_noop_while_disabled():
    """Satellite regression: ``add()`` used to trust its callers to guard
    with ``if perf.enabled`` — an unguarded call site silently leaked
    counts into a disabled registry.  The internal backstop stops that."""
    reg = PerfRegistry()
    reg.add("leak")
    reg.add("leak", 10)
    assert reg.counters == {}
    reg.enable()
    reg.add("leak", 2)
    reg.disable()
    reg.add("leak", 5)  # disabled again: must not accumulate further
    assert reg.counters == {"leak": 2}


def test_disabled_registry_empty_after_full_mghs_run():
    """End to end: a complete MGHS run (kernel, planes, drivers, runner)
    with instrumentation off must leave the global registry untouched."""
    from repro.algorithms.ghs import run_modified_ghs

    run_modified_ghs(uniform_points(150, seed=2))
    assert perf.snapshot() == {"timers": {}, "counters": {}}


def test_back_to_back_runs_report_identical_numbers():
    """Satellite regression: repeated in-process runs must not accumulate
    stale registry state — a reset at the run boundary makes the second
    run's numbers equal the first's (counters and call counts exactly;
    timer *seconds* are wall clock and excluded)."""
    from repro.algorithms.ghs import run_modified_ghs

    pts = uniform_points(150, seed=3)

    def one_run():
        perf.reset()
        perf.enable()
        try:
            run_modified_ghs(pts)
        finally:
            snap = perf.snapshot()
            perf.disable()
        return snap

    first, second = one_run(), one_run()
    assert first["counters"] == second["counters"]
    assert {k: v["calls"] for k, v in first["timers"].items()} == {
        k: v["calls"] for k, v in second["timers"].items()
    }


def test_merge_folds_snapshots_additively():
    src = PerfRegistry()
    src.enable()
    src.add("events", 3)
    with src.timed("phase"):
        pass
    snap = src.snapshot()

    dst = PerfRegistry()  # merge works regardless of dst's enabled flag
    dst.merge(snap)
    assert dst.counters == {"events": 3}
    assert dst.timers["phase"][1] == 1
    # snapshot() hands out copies: merging must never mutate the source,
    # so repeated snapshots stay reproducible.
    assert src.snapshot() == snap
    dst.merge(snap)
    assert dst.counters == {"events": 6}
    assert dst.timers["phase"][1] == 2
