"""Tests for the theory toolkit: bounds, tail bounds, scaling fits."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ExperimentError, GeometryError
from repro.geometry.points import uniform_points
from repro.theory.bounds import (
    knn_energy_need,
    korach_message_bound,
    mst_energy_lower_bound,
    spanning_tree_energy_lower_bound,
)
from repro.theory.chernoff import chernoff_upper_tail, poisson_upper_tail
from repro.theory.scaling import fit_loglog_slope, fit_power_law


class TestBounds:
    def test_l_mst_theta_one(self):
        """sum d^2 over the EMST is Theta(1): stable across n."""
        vals = [
            mst_energy_lower_bound(uniform_points(n, seed=0)) for n in (500, 2000)
        ]
        assert 0.2 < vals[0] < 1.5
        assert 0.2 < vals[1] < 1.5

    def test_l_mst_alpha_one_grows(self):
        """sum d over the EMST is Theta(sqrt n) by Steele's theorem."""
        a = mst_energy_lower_bound(uniform_points(400, seed=1), alpha=1.0)
        b = mst_energy_lower_bound(uniform_points(1600, seed=1), alpha=1.0)
        assert 1.5 < b / a < 2.7  # ideal ratio: 2

    def test_l_mst_trivial(self):
        assert mst_energy_lower_bound(np.zeros((0, 2))) == 0.0
        assert mst_energy_lower_bound(np.array([[0.1, 0.1]])) == 0.0

    def test_knn_energy_scale(self):
        """Lemma 4.1: min-over-nodes k-NN energy is about k/(b n) with a
        moderate constant b."""
        n, k = 2000, 8
        need = knn_energy_need(uniform_points(n, seed=2), k)
        b = k / (n * float(need.min()))
        assert 1.0 < b < 50.0

    def test_korach_curve(self):
        assert korach_message_bound(1) == 0.0
        assert korach_message_bound(100) == pytest.approx(100 * math.log(100))
        with pytest.raises(GeometryError):
            korach_message_bound(0)

    def test_energy_lower_bound_curve(self):
        assert spanning_tree_energy_lower_bound(1) == 0.0
        v = spanning_tree_energy_lower_bound(1000)
        assert v == pytest.approx(math.log(1000) / math.pi)

    def test_algorithms_respect_lower_bounds(self):
        """Measured energies sit above both lower-bound curves: Omega(log n)
        without coordinates (GHS/EOPT), Omega(L_MST) with (Co-NNT)."""
        from repro.algorithms.connt import run_connt
        from repro.algorithms.eopt import run_eopt

        n = 500
        pts = uniform_points(n, seed=3)
        assert run_eopt(pts).energy > spanning_tree_energy_lower_bound(n)
        assert run_connt(pts).energy > mst_energy_lower_bound(pts)


class TestChernoff:
    def test_vacuous_below_mean(self):
        assert chernoff_upper_tail(10.0, 5.0) == 1.0

    def test_decreasing_in_k(self):
        vals = [chernoff_upper_tail(10.0, k) for k in (15, 20, 30, 50)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_in_unit_interval(self):
        for k in (0.0, 5.0, 20.0, 100.0):
            assert 0.0 <= chernoff_upper_tail(7.0, k) <= 1.0

    def test_zero_mean(self):
        assert chernoff_upper_tail(0.0, 1.0) == 0.0
        assert chernoff_upper_tail(0.0, 0.0) == 1.0

    def test_bounds_empirical_poisson_tail(self):
        """The bound really bounds: empirical Poisson tail <= Chernoff."""
        rng = np.random.default_rng(0)
        mu, k = 4.0, 12
        samples = rng.poisson(mu, size=200_000)
        empirical = float((samples >= k).mean())
        assert empirical <= chernoff_upper_tail(mu, k)
        assert empirical <= poisson_upper_tail(mu, k)

    def test_lemma_4_1_shape(self):
        """With mu = k/b the bound decays like (e/b)^k as the lemma states."""
        b = 10.0
        for k in (10, 20, 40):
            bound = poisson_upper_tail(k / b, k)
            assert bound <= (math.e / b) ** k * 1.001

    def test_validation(self):
        with pytest.raises(GeometryError):
            chernoff_upper_tail(-1.0, 2.0)
        with pytest.raises(GeometryError):
            poisson_upper_tail(1.0, -2.0)


class TestScaling:
    def test_recovers_known_log_power(self):
        ns = np.array([100, 300, 1000, 3000, 10000])
        for b in (0.0, 1.0, 2.0):
            w = 3.0 * np.log(ns) ** b if b else np.full(len(ns), 3.0)
            fit = fit_loglog_slope(ns, w)
            assert fit.slope == pytest.approx(b, abs=1e-9)
            assert fit.r_squared > 0.999 or b == 0.0

    def test_recovers_power_law(self):
        ns = np.array([10, 100, 1000])
        fit = fit_power_law(ns, 5.0 * ns**1.5)
        assert fit.slope == pytest.approx(1.5)

    def test_predict(self):
        ns = np.array([100, 1000])
        fit = fit_power_law(ns, ns.astype(float))
        assert fit.predict(np.log([100.0]))[0] == pytest.approx(np.log(100.0))

    def test_validation(self):
        with pytest.raises(ExperimentError):
            fit_loglog_slope(np.array([2, 10]), np.array([1.0, 2.0]))  # n <= e
        with pytest.raises(ExperimentError):
            fit_loglog_slope(np.array([10, 100]), np.array([0.0, 1.0]))
        with pytest.raises(ExperimentError):
            fit_power_law(np.array([10]), np.array([1.0]))
        with pytest.raises(ExperimentError):
            fit_power_law(np.array([10, 20]), np.array([1.0]))

    @given(
        st.floats(min_value=-3, max_value=3),
        st.floats(min_value=0.1, max_value=10),
    )
    def test_property_exact_recovery(self, slope, scale):
        """Noise-free power-law data is recovered exactly."""
        ns = np.array([10.0, 50.0, 250.0, 1250.0])
        fit = fit_power_law(ns, scale * ns**slope)
        assert fit.slope == pytest.approx(slope, abs=1e-6)
