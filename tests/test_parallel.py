"""Tests for the process-parallel sweep executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import parallel as parallel_mod
from repro.experiments.config import SweepConfig
from repro.experiments.parallel import shutdown, sweep_energy_parallel
from repro.experiments.runner import sweep_energy

CFG = SweepConfig(ns=(50, 100), seeds=(0, 1), algorithms=("EOPT", "Co-NNT"))


class TestParallelSweep:
    def test_matches_serial_exactly(self):
        """Every cell is deterministic, so parallel == serial bitwise."""
        serial = sweep_energy(CFG)
        parallel = sweep_energy_parallel(CFG, workers=2)
        for alg in CFG.algorithms:
            assert np.array_equal(serial.energy[alg], parallel.energy[alg])
            assert np.array_equal(serial.messages[alg], parallel.messages[alg])
            assert np.array_equal(serial.rounds[alg], parallel.rounds[alg])

    def test_single_worker(self):
        sweep = sweep_energy_parallel(
            SweepConfig(ns=(50,), seeds=(0,), algorithms=("Co-NNT",)), workers=1
        )
        assert sweep.energy["Co-NNT"].shape == (1, 1)
        assert sweep.energy["Co-NNT"][0, 0] > 0

    def test_invalid_workers(self):
        with pytest.raises(ExperimentError):
            sweep_energy_parallel(CFG, workers=0)

    def test_default_workers(self):
        sweep = sweep_energy_parallel(
            SweepConfig(ns=(50,), seeds=(0,), algorithms=("Co-NNT",))
        )
        assert sweep.config.ns == (50,)


class TestPoolReuse:
    CFG_SMALL = SweepConfig(ns=(50,), seeds=(0,), algorithms=("Co-NNT",))

    def test_pool_survives_across_sweeps(self):
        shutdown()  # known-clean start
        sweep_energy_parallel(self.CFG_SMALL, workers=2)
        pool = parallel_mod._pool
        assert pool is not None
        sweep_energy_parallel(self.CFG_SMALL, workers=2)
        assert parallel_mod._pool is pool  # same executor object reused

    def test_pool_reused_when_big_enough(self):
        """Satellite regression: a 2-worker pool serves a 1-worker batch
        fine (the extra worker idles), so shrinking the request must not
        pay a teardown/respawn — alternating wide and narrow sweeps used
        to thrash the pool (and its warm instance caches) twice per
        alternation."""
        shutdown()
        sweep_energy_parallel(self.CFG_SMALL, workers=2)
        pool = parallel_mod._pool
        sweep_energy_parallel(self.CFG_SMALL, workers=1)
        assert parallel_mod._pool is pool
        assert parallel_mod._pool_workers == 2

    def test_pool_growth_respawns(self):
        shutdown()
        sweep_energy_parallel(self.CFG_SMALL, workers=1)
        pool = parallel_mod._pool
        sweep_energy_parallel(self.CFG_SMALL, workers=2)
        assert parallel_mod._pool is not pool
        assert parallel_mod._pool_workers == 2

    def test_shutdown_clears_and_is_idempotent(self):
        sweep_energy_parallel(self.CFG_SMALL, workers=1)
        assert parallel_mod._pool is not None
        shutdown()
        assert parallel_mod._pool is None
        assert parallel_mod._pool_workers == 0
        shutdown()  # second call is a no-op
        # And the next sweep transparently respawns a pool.
        sweep = sweep_energy_parallel(self.CFG_SMALL, workers=1)
        assert sweep.energy["Co-NNT"][0, 0] > 0
        shutdown()


class TestWorkerInstrumentation:
    """Satellite regression: perf/trace recorded inside pool workers used
    to die with the worker's process-global registries — ``--perf`` on a
    parallel sweep under-reported to near zero.  Worker snapshots now
    ship back with the results and merge into the parent registries."""

    CFG = SweepConfig(ns=(50,), seeds=(0, 1), algorithms=("EOPT", "Co-NNT"))

    def _sweep_counters(self, sweep_fn, **kwargs):
        from repro.perf import perf

        perf.reset()
        perf.enable()
        try:
            sweep_fn(self.CFG, **kwargs)
            snap = perf.snapshot()
        finally:
            perf.disable()
            perf.reset()
        return snap

    def test_parallel_perf_matches_serial(self):
        from repro.perf import PEAK_RSS_COUNTER

        serial = self._sweep_counters(sweep_energy)
        parallel = self._sweep_counters(sweep_energy_parallel, workers=2)
        # Deterministic work => identical counters and timer call counts;
        # timer seconds and peak RSS are process/wall-clock observations
        # and differ by construction (RSS merges by max across workers).
        ser = dict(serial["counters"])
        par = dict(parallel["counters"])
        assert ser.pop(PEAK_RSS_COUNTER, 0) > 0
        assert par.pop(PEAK_RSS_COUNTER, 0) > 0
        assert par == ser
        assert {k: v["calls"] for k, v in parallel["timers"].items()} == {
            k: v["calls"] for k, v in serial["timers"].items()
        }

    def test_parallel_trace_ships_back_with_source_stamps(self):
        from repro.trace import trace

        trace.reset()
        trace.enable()
        try:
            sweep_energy_parallel(self.CFG, workers=2)
            events = trace.snapshot()
        finally:
            trace.disable()
            trace.reset()
        starts = [e for e in events if e["ev"] == "run_start"]
        # One run per (n, seed, algorithm) cell, arriving in task order.
        assert [e["src"] for e in starts] == [
            f"{alg}:n{n}:s{seed}"
            for n in self.CFG.ns
            for seed in self.CFG.seeds
            for alg in self.CFG.algorithms
        ]
        assert all("src" in e for e in events)
        assert [e["i"] for e in events] == list(range(len(events)))

    def test_workers_ship_nothing_when_instrumentation_off(self):
        from repro.perf import perf
        from repro.trace import trace

        sweep_energy_parallel(self.CFG, workers=2)
        assert perf.snapshot() == {"timers": {}, "counters": {}}
        assert trace.events == []


class TestAtexitCleanup:
    def test_shutdown_registered_atexit(self):
        """Satellite regression: a sweep-and-exit process must not leak
        its worker pool — shutdown() is registered with atexit."""
        import atexit

        # Python exposes no public registry; unregister() returns None
        # whether or not present, so probe by re-registering: unregister
        # then restore, asserting the module wired it at import time.
        assert getattr(parallel_mod, "atexit", None) is atexit
        # And the hook must be idempotent / callable with no pool alive.
        shutdown()
        shutdown()
        assert parallel_mod._pool is None

    def test_interpreter_exit_reaps_workers(self):
        """End to end: a child interpreter that sweeps and exits without
        explicit shutdown() must still terminate promptly (the atexit
        hook joins the pool)."""
        import subprocess
        import sys

        code = (
            "from repro.experiments.config import SweepConfig\n"
            "from repro.experiments.parallel import sweep_energy_parallel\n"
            "cfg = SweepConfig(ns=(50,), seeds=(0,), algorithms=('Co-NNT',))\n"
            "sweep_energy_parallel(cfg, workers=2)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], timeout=120, capture_output=True
        )
        assert proc.returncode == 0, proc.stderr.decode()


class TestInstanceFabric:
    """The shared-memory instance fabric: zero-copy instance publication
    for the process backend, with per-worker rebuilds as the always-
    equivalent fallback."""

    def _specs(self, kernel="fast", n=300):
        from repro.runspec import RunSpec

        return [
            RunSpec(algorithm=alg, n=n, seed=seed, kernel=kernel)
            for alg in ("GHS", "MGHS")
            for seed in (0, 1)
        ]

    @pytest.mark.parametrize("kernel", ["fast", "turbo"])
    def test_shm_and_rebuilt_paths_identical(self, kernel, monkeypatch):
        """The fabric is a pure accelerator: reports from SHM-attached
        workers are byte-identical to per-worker-rebuilt ones."""
        from repro.experiments import fabric
        from repro.runspec import execute_batch

        specs = self._specs(kernel=kernel)
        shutdown()
        attached = execute_batch(specs, backend="process", workers=2)
        assert fabric.stats()["published_segments"] > 0
        shutdown()
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        assert not fabric.shm_available()
        rebuilt = execute_batch(specs, backend="process", workers=2)
        shutdown()
        for a, b in zip(attached, rebuilt):
            assert a.to_json() == b.to_json()

    def test_shutdown_unlinks_segments(self):
        """Pool shutdown releases every published OS segment: the names
        disappear and a fresh attach fails."""
        from multiprocessing import shared_memory

        from repro.experiments import fabric
        from repro.runspec import execute_batch

        shutdown()
        execute_batch(self._specs(), backend="process", workers=2)
        names = [
            pub.shm.name
            for pub in fabric._published.values()
            if hasattr(pub, "shm")
        ]
        assert names
        shutdown()
        assert fabric.stats()["published_segments"] == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_pool_failure_releases_segments(self, monkeypatch):
        """The pool-failure path (worker crash, sandboxed spawn) must not
        leak segments: the serial fallback still answers, and the OS
        names are gone afterwards."""
        from repro.experiments import fabric
        from repro.runspec import engine as engine_mod
        from repro.runspec import execute_batch

        def no_pool(workers):
            raise OSError("spawn blocked")

        shutdown()
        monkeypatch.setattr(engine_mod, "_executor", no_pool)
        monkeypatch.setattr(engine_mod, "_fallback_warned", False)
        specs = self._specs()
        with pytest.warns(RuntimeWarning, match="falling back to the serial"):
            degraded = execute_batch(specs, backend="process", workers=2)
        assert fabric.stats()["published_segments"] == 0
        monkeypatch.undo()
        shutdown()
        serial = execute_batch(specs, backend="serial")
        for a, b in zip(degraded, serial):
            assert a.to_json() == b.to_json()

    def test_release_retires_adopted_views(self):
        """After release, the parent instance cache must rebuild instead
        of serving a retired shared view (use-after-unmap guard)."""
        import numpy as np

        from repro.experiments import fabric
        from repro.experiments.instances import get_points
        from repro.runspec import RunSpec

        shutdown()
        spec = RunSpec(algorithm="GHS", n=123, seed=7)
        manifest = fabric.manifest_for_specs([spec])
        if manifest is None:
            pytest.skip("shared memory unavailable on this host")
        shared = get_points(123, 7)
        fabric.release()
        rebuilt = get_points(123, 7)
        assert rebuilt is not shared
        assert np.array_equal(rebuilt, shared)

    def test_attach_of_missing_segment_degrades(self):
        """A worker racing an eviction just rebuilds locally."""
        from repro.experiments import fabric
        from repro.experiments.instances import get_points

        before = len(fabric._attached)
        fabric.attach_manifest(
            [{"kind": "points", "n": 50, "seed": 0, "shm": "psm_gone_gone"}]
        )
        assert len(fabric._attached) == before
        assert get_points(50, 0).shape == (50, 2)


class TestSerialFallback:
    """Satellite regression: hosts that cannot spawn a process pool
    (sandboxed CI) degrade to the serial backend with one warning."""

    CFG = SweepConfig(ns=(50, 80), seeds=(0,), algorithms=("MGHS", "Co-NNT"))

    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        from repro.runspec import engine as engine_mod

        def no_pool(workers):
            raise OSError("spawn blocked by sandbox")

        shutdown()
        monkeypatch.setattr(engine_mod, "_executor", no_pool)
        monkeypatch.setattr(engine_mod, "_fallback_warned", False)
        with pytest.warns(RuntimeWarning, match="falling back to the serial"):
            degraded = sweep_energy_parallel(self.CFG, workers=2)
        assert engine_mod.pool_state()["serial_fallback"]
        serial = sweep_energy(self.CFG)
        for alg in self.CFG.algorithms:
            assert np.array_equal(degraded.energy[alg], serial.energy[alg])
            assert np.array_equal(degraded.messages[alg], serial.messages[alg])
            assert np.array_equal(degraded.rounds[alg], serial.rounds[alg])

    def test_fallback_warns_exactly_once_per_process(self, monkeypatch):
        """A long-lived server degrading on every request must not spam:
        the first fallback warns, later ones only flip pool_state()."""
        import warnings as warnings_mod

        from repro.runspec import engine as engine_mod

        def no_pool(workers):
            raise NotImplementedError("no multiprocessing primitives")

        shutdown()
        monkeypatch.setattr(engine_mod, "_executor", no_pool)
        monkeypatch.setattr(engine_mod, "_fallback_warned", False)
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            sweep_energy_parallel(self.CFG, workers=2)
            sweep_energy_parallel(self.CFG, workers=2)  # second degrade: silent
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        state = engine_mod.pool_state()
        assert state["serial_fallback"] and not state["alive"]

    def test_worker_error_still_raises(self):
        """A genuine per-run failure must NOT be silently retried serially."""
        from repro.runspec import RunSpec, execute_batch
        from repro.sim.faults import FaultPlan

        # Rand-NNT rejects fault plans inside the worker; the dispatch
        # error is an ExperimentError, which is not a pool failure.
        bad = [
            RunSpec(
                algorithm="Rand-NNT",
                n=50,
                seed=0,
                faults=FaultPlan(seed=0, drop_rate=0.5),
            )
        ]
        with pytest.raises(ExperimentError, match="no fault-recovery layer"):
            execute_batch(bad, backend="process", workers=1)
