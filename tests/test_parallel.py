"""Tests for the process-parallel sweep executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.config import SweepConfig
from repro.experiments.parallel import sweep_energy_parallel
from repro.experiments.runner import sweep_energy

CFG = SweepConfig(ns=(50, 100), seeds=(0, 1), algorithms=("EOPT", "Co-NNT"))


class TestParallelSweep:
    def test_matches_serial_exactly(self):
        """Every cell is deterministic, so parallel == serial bitwise."""
        serial = sweep_energy(CFG)
        parallel = sweep_energy_parallel(CFG, workers=2)
        for alg in CFG.algorithms:
            assert np.array_equal(serial.energy[alg], parallel.energy[alg])
            assert np.array_equal(serial.messages[alg], parallel.messages[alg])
            assert np.array_equal(serial.rounds[alg], parallel.rounds[alg])

    def test_single_worker(self):
        sweep = sweep_energy_parallel(
            SweepConfig(ns=(50,), seeds=(0,), algorithms=("Co-NNT",)), workers=1
        )
        assert sweep.energy["Co-NNT"].shape == (1, 1)
        assert sweep.energy["Co-NNT"][0, 0] > 0

    def test_invalid_workers(self):
        with pytest.raises(ExperimentError):
            sweep_energy_parallel(CFG, workers=0)

    def test_default_workers(self):
        sweep = sweep_energy_parallel(
            SweepConfig(ns=(50,), seeds=(0,), algorithms=("Co-NNT",))
        )
        assert sweep.config.ns == (50,)
