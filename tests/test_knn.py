"""Tests for the K-closest-neighbours model ([25] comparison)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry.points import uniform_points
from repro.rgg.components import component_sizes
from repro.rgg.knn import knn_equivalent_radius, knn_graph


class TestConstruction:
    def test_matches_brute_force(self):
        pts = uniform_points(50, seed=0)
        g = knn_graph(pts, 3)
        expected = set()
        for u in range(50):
            d = np.sqrt(((pts - pts[u]) ** 2).sum(axis=1))
            d[u] = np.inf
            for v in np.argsort(d)[:3]:
                expected.add((min(u, int(v)), max(u, int(v))))
        assert set(map(tuple, g.edges)) == expected

    def test_mutual_is_subset(self):
        pts = uniform_points(80, seed=1)
        either = set(map(tuple, knn_graph(pts, 4, mutual=False).edges))
        both = set(map(tuple, knn_graph(pts, 4, mutual=True).edges))
        assert both <= either

    def test_min_degree_at_least_k(self):
        """Union symmetrisation: every node keeps >= k incident edges."""
        pts = uniform_points(100, seed=2)
        g = knn_graph(pts, 3)
        assert int(g.degrees().min()) >= 3

    def test_edge_count_bounds(self):
        pts = uniform_points(100, seed=3)
        g = knn_graph(pts, 2)
        assert 100 <= g.m <= 200  # between n*k/2 and n*k

    def test_validation(self):
        pts = uniform_points(10, seed=0)
        with pytest.raises(GeometryError):
            knn_graph(pts, 0)
        with pytest.raises(GeometryError):
            knn_graph(pts, 10)
        with pytest.raises(GeometryError):
            knn_graph(np.zeros((3, 3)), 1)

    def test_empty(self):
        # Empty input short-circuits before the k-range check.
        g = knn_graph(np.zeros((0, 2)), 1)
        assert g.n == 0 and g.m == 0

    @given(st.integers(0, 2**31 - 1), st.integers(2, 40), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_degrees(self, seed, n, k):
        if k >= n:
            k = n - 1
        pts = uniform_points(n, seed=seed)
        g = knn_graph(pts, k)
        assert int(g.degrees().min()) >= k


class TestGiantComparison:
    """The [25] vs fixed-radius comparison behind Thm 5.2."""

    def test_k3_has_giant(self):
        """K = 3 (a fixed constant, as [25] requires) gives a giant
        component holding almost all nodes."""
        pts = uniform_points(2000, seed=0)
        sizes = component_sizes(knn_graph(pts, 3))
        assert sizes[0] > 0.9 * 2000

    def test_k1_shatters(self):
        """K = 1 (mutual-nearest chains) cannot percolate."""
        pts = uniform_points(2000, seed=1)
        sizes = component_sizes(knn_graph(pts, 1))
        assert sizes[0] < 0.05 * 2000

    def test_small_leftovers_at_k3(self):
        """Like Thm 5.2: non-giant components stay O(log^2 n)."""
        n = 3000
        pts = uniform_points(n, seed=2)
        sizes = component_sizes(knn_graph(pts, 3))
        if len(sizes) > 1:
            assert sizes[1] <= 2.0 * np.log(n) ** 2

    def test_equivalent_radius_scale(self):
        """The degree-matched radius for K=3 sits right at the paper's
        giant-radius scale c1/sqrt(n) with c1 ~ 1."""
        n = 1000
        r = knn_equivalent_radius(n, 3)
        assert 0.5 / np.sqrt(n) < r < 1.5 / np.sqrt(n)

    def test_knn_connects_before_fixed_radius(self):
        """At matched expected degree, K-closest is better connected than
        the fixed-radius graph (it never strands sparse-region nodes) —
        the structural advantage [25] exploits."""
        pts = uniform_points(800, seed=3)
        k = 6
        g_knn = knn_graph(pts, k)
        from repro.rgg.build import build_rgg

        g_rad = build_rgg(pts, knn_equivalent_radius(800, k))
        knn_sizes = component_sizes(g_knn)
        rad_sizes = component_sizes(g_rad)
        assert knn_sizes[0] >= rad_sizes[0]

    def test_validation(self):
        with pytest.raises(GeometryError):
            knn_equivalent_radius(0, 3)
        with pytest.raises(GeometryError):
            knn_equivalent_radius(10, 0)
