"""FIG1 — Fig. 1: the giant component and the small regions.

Regenerates the percolation picture: the unique giant cluster of good
cells (Fig. 1(a)) whose complement splits into small regions (Fig. 1(b)).
Asserts the structural facts the figure illustrates: one dominant good
cluster, giant node-component, small leftovers.
"""

from __future__ import annotations

from repro.experiments.figures import fig1_percolation

from conftest import write_artifact


def test_fig1_report(benchmark):
    result = benchmark.pedantic(
        fig1_percolation, kwargs={"n": 4000, "seed": 0}, rounds=1, iterations=1
    )
    header = (
        f"n={result.n}  r={result.radius:.4f}  "
        f"giant component: {result.giant_fraction:.1%} of nodes\n"
        f"largest cell-view small region: {result.max_small_region_nodes} nodes\n"
        f"('#' = largest cluster of good cells, '.' = complement)\n"
    )
    write_artifact("FIG1", header + result.good_cluster_picture)
    benchmark.extra_info["giant_fraction"] = result.giant_fraction

    assert result.giant_fraction > 0.9
    assert "#" in result.good_cluster_picture
    # The giant good-cell cluster dominates: far more '#' than isolated '.'
    pic = result.good_cluster_picture
    assert pic.count("#") > 0.5 * (pic.count("#") + pic.count("."))
