"""FIG3a — Fig. 3(a): energy consumed by GHS, EOPT and Co-NNT vs n.

Regenerates the paper's main experimental figure.  Expected shape
(Sec. VII): GHS grows fastest (log^2 n), EOPT clearly slower (log n),
Co-NNT flat (O(1)); at the top of the sweep GHS pays hundreds of energy
units while EOPT pays tens and Co-NNT single digits.
"""

from __future__ import annotations

from repro.experiments.figures import fig3a_plot, fig3a_rows
from repro.experiments.instances import get_points
from repro.runspec import RunSpec, execute

from conftest import write_artifact


BENCH_N = 1000


def _time_algorithm(benchmark, alg: str):
    """Time one spec-driven simulation (instance pre-warmed out of band)."""
    get_points(BENCH_N, 0)
    spec = RunSpec(algorithm=alg, n=BENCH_N, seed=0)
    report = benchmark.pedantic(execute, args=(spec,), rounds=1, iterations=1)
    benchmark.extra_info["energy"] = report.energy
    benchmark.extra_info["messages"] = report.messages


def test_time_ghs(benchmark):
    """Wall-clock of one full GHS simulation at n=1000."""
    _time_algorithm(benchmark, "GHS")


def test_time_eopt(benchmark):
    """Wall-clock of one full EOPT simulation at n=1000."""
    _time_algorithm(benchmark, "EOPT")


def test_time_connt(benchmark):
    """Wall-clock of one full Co-NNT simulation at n=1000."""
    _time_algorithm(benchmark, "Co-NNT")


def test_fig3a_report(benchmark, fig3_sweep):
    """Regenerate the Fig. 3(a) table + ASCII plot from the session sweep."""
    from repro.experiments.report import format_table

    def build():
        headers = ["n"] + [f"E[{a}]" for a in fig3_sweep.config.algorithms]
        table = format_table(headers, fig3a_rows(fig3_sweep))
        return table + "\n\n" + fig3a_plot(fig3_sweep)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    write_artifact("FIG3a", text)
    for alg in fig3_sweep.config.algorithms:
        benchmark.extra_info[alg] = list(map(float, fig3_sweep.mean_energy(alg)))
    # The paper's ordering must hold pointwise across the sweep.
    g, e, c = (fig3_sweep.mean_energy(a) for a in ("GHS", "EOPT", "Co-NNT"))
    assert (g > e).all() and (e > c).all()
