"""ABL-A — ablation: path-loss exponent alpha in w(d) = d^alpha.

The paper fixes alpha = 2 for energy accounting but notes the model
generalises.  Higher alpha punishes long transmissions harder, so the
energy gap between GHS (whose probes travel ~r2) and EOPT (mostly ~r1
traffic) *widens* with alpha.  This bench sweeps alpha in {1, 2, 3, 4}.
"""

from __future__ import annotations

from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_ghs
from repro.experiments.report import format_table
from repro.geometry.points import uniform_points
from repro.sim.power import PathLossModel

from conftest import write_artifact

N = 800
ALPHAS = (1.0, 2.0, 3.0, 4.0)


def test_ablation_alpha_report(benchmark):
    pts = uniform_points(N, seed=0)

    def run_grid():
        out = []
        for alpha in ALPHAS:
            power = PathLossModel(a=1.0, alpha=alpha)
            out.append((alpha, run_ghs(pts, power=power), run_eopt(pts, power=power)))
        return out

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        (
            f"{alpha:.0f}",
            f"{ghs.energy:.3g}",
            f"{eopt.energy:.3g}",
            f"{ghs.energy / eopt.energy:.1f}x",
        )
        for alpha, ghs, eopt in results
    ]
    text = format_table(["alpha", "GHS energy", "EOPT energy", "gap"], rows)
    write_artifact("ABL-A", text)

    # The tree is the same regardless of alpha (MST invariance, Sec. II)...
    edges0 = {tuple(e) for e in results[0][2].tree_edges}
    for _, _, eopt in results[1:]:
        assert {tuple(e) for e in eopt.tree_edges} == edges0
    # ...but the energy gap widens with alpha.
    gaps = [ghs.energy / eopt.energy for _, ghs, eopt in results]
    assert gaps[-1] > gaps[0]
    benchmark.extra_info["gaps"] = gaps
