#!/usr/bin/env python
"""Serve-layer smoke: cold vs warm HTTP latency, byte-identity, dedupe.

The ``make serve-smoke`` gate for the HTTP run service.  The whole
exercise goes through the real CLI (``python -m repro serve``) against a
throwaway sqlite cache, twice:

* **cold** — a fresh server computes the golden spec once; the report is
  fetched over HTTP and kept as the reference bytes;
* **concurrent** — eight clients race the *same* new spec at one server:
  exactly one submission may create the job (the broker's atomic
  singleflight), every client must land on the same job id, and every
  fetched report must be byte-identical;
* **warm** — the server is killed and restarted on the same cache path;
  resubmitting the golden spec must resolve from the store without
  computing (``source == "store"``, broker ``computed == 0``, store
  ``hits >= 1``) and the served report must be **byte-identical** to the
  cold pass (exit code 2 otherwise — the service returned something the
  engine would not have produced).

The warm round trip must beat the cold one by ``WARM_SPEEDUP_MIN``
(exit code 1 otherwise).  Results land in
``benchmarks/out/BENCH_serve.json``.

Usage::

    python benchmarks/bench_serve_smoke.py
    python benchmarks/bench_serve_smoke.py --quick

Not a pytest file on purpose: ``make serve-smoke`` calls it directly so
the gates' exit codes reach CI.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT_PATH = REPO / "benchmarks" / "out" / "BENCH_serve.json"

#: A warm (store-hit) round trip skips the compute entirely; even with
#: HTTP and sqlite overhead it must beat the cold pass handily.
WARM_SPEEDUP_MIN = 5.0

CLIENTS = 8
POLL_S = 0.02
TIMEOUT_S = 120.0

_READY_RE = re.compile(r"listening on http://([\d.]+):(\d+)")


def _fail(msg: str) -> None:
    print(f"FATAL: {msg}", file=sys.stderr)
    sys.exit(2)


def _gold_spec(quick: bool) -> dict:
    return {
        "algorithm": "MGHS",
        "n": 200 if quick else 500,
        "seed": 0,
        "kernel": "turbo",
    }


# -- tiny blocking HTTP client ------------------------------------------------


def _request(method: str, url: str, body: dict | None = None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _poll_done(base: str, job_id: str) -> dict:
    deadline = time.perf_counter() + TIMEOUT_S
    while time.perf_counter() < deadline:
        status, raw = _request("GET", f"{base}/runs/{job_id}")
        if status != 200:
            _fail(f"status poll for {job_id} returned HTTP {status}")
        data = json.loads(raw)
        if data["state"] in ("done", "failed", "cancelled"):
            if data["state"] != "done":
                _fail(f"job {job_id} ended {data['state']}: {data.get('error')}")
            return data
        time.sleep(POLL_S)
    _fail(f"job {job_id} did not finish within {TIMEOUT_S}s")


def _round_trip(base: str, spec: dict) -> tuple[float, dict, bytes]:
    """Submit, wait for done, fetch the verbatim report; returns
    (seconds, final status payload, report bytes)."""
    t0 = time.perf_counter()
    status, raw = _request("POST", f"{base}/runs", spec)
    if status not in (200, 201):
        _fail(f"submit returned HTTP {status}: {raw[:200]!r}")
    job_id = json.loads(raw)["id"]
    final = _poll_done(base, job_id)
    elapsed = time.perf_counter() - t0
    status, report = _request("GET", f"{base}/runs/{job_id}/report")
    if status != 200:
        _fail(f"report fetch returned HTTP {status}")
    return elapsed, final, report


# -- server lifecycle ---------------------------------------------------------


class _Server:
    """One ``python -m repro serve`` subprocess on an ephemeral port."""

    def __init__(self, cache_path: Path, workers: int) -> None:
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--cache-path",
                str(cache_path),
                "--workers",
                str(workers),
            ],
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 30
        self.base = None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            m = _READY_RE.search(line)
            if m:
                self.base = f"http://{m.group(1)}:{m.group(2)}"
                return
        self.stop()
        _fail("serve subprocess never printed its listening line")

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


# -- the smoke ----------------------------------------------------------------


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="smaller instance")
    args = ap.parse_args(argv)

    spec = _gold_spec(args.quick)
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        cache = Path(tmp) / "results.sqlite"

        # Cold pass + concurrent gate against server #1.
        srv = _Server(cache, workers=2)
        try:
            cold_s, cold_final, cold_report = _round_trip(srv.base, spec)
            if cold_final["source"] != "computed":
                _fail(f"cold run source is {cold_final['source']!r}, not computed")
            print(f"cold: {cold_s * 1e3:.1f} ms (computed, {len(cold_report)} bytes)")

            race_spec = dict(spec, seed=spec["seed"] + 1)
            with concurrent.futures.ThreadPoolExecutor(CLIENTS) as pool:
                raced = list(
                    pool.map(
                        lambda _i: _request("POST", f"{srv.base}/runs", race_spec),
                        range(CLIENTS),
                    )
                )
            bodies = [json.loads(raw) for _status, raw in raced]
            ids = {b["id"] for b in bodies}
            created = sum(1 for b in bodies if b["created"])
            if len(ids) != 1:
                _fail(f"concurrent clients saw {len(ids)} job ids: {sorted(ids)}")
            if created != 1:
                _fail(f"{created} of {CLIENTS} concurrent submissions created the job")
            race_id = ids.pop()
            _poll_done(srv.base, race_id)
            race_reports = {
                _request("GET", f"{srv.base}/runs/{race_id}/report")[1]
                for _ in range(CLIENTS)
            }
            if len(race_reports) != 1:
                _fail("concurrent clients fetched differing report bytes")
            _status, raw = _request("GET", f"{srv.base}/stats")
            stats1 = json.loads(raw)
            if stats1["broker"]["computed"] != 2:
                _fail(
                    "server computed "
                    f"{stats1['broker']['computed']} jobs, expected 2"
                )
            if stats1["broker"]["deduped"] != CLIENTS - 1:
                _fail(
                    f"expected {CLIENTS - 1} deduped submissions, got "
                    f"{stats1['broker']['deduped']}"
                )
            print(
                f"concurrent: {CLIENTS} clients, 1 job, "
                f"{stats1['broker']['deduped']} deduped"
            )
        finally:
            srv.stop()

        # Warm pass: a fresh server over the same cache must answer from
        # the store, byte-identically, without computing.
        srv = _Server(cache, workers=2)
        try:
            warm_s, warm_final, warm_report = _round_trip(srv.base, spec)
            if warm_final["source"] != "store":
                _fail(f"warm run source is {warm_final['source']!r}, not store")
            if warm_report != cold_report:
                _fail(
                    "warm report diverged from cold report "
                    f"({len(warm_report)} vs {len(cold_report)} bytes)"
                )
            _status, raw = _request("GET", f"{srv.base}/stats")
            stats2 = json.loads(raw)
            if stats2["broker"]["computed"] != 0:
                _fail("warm server computed a job it should have store-resolved")
            if stats2["broker"]["store_resolved"] != 1:
                _fail("warm server did not record a store resolution")
            if stats2["store"]["hits"] < 1:
                _fail(f"store recorded {stats2['store']['hits']} hits, expected >= 1")
            print(f"warm: {warm_s * 1e3:.1f} ms (store hit, byte-identical)")
        finally:
            srv.stop()

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"speedup: {speedup:.1f}x")
    if speedup < WARM_SPEEDUP_MIN:
        failures.append(
            f"warm speedup {speedup:.1f}x below the {WARM_SPEEDUP_MIN:.0f}x gate"
        )

    rows = {
        "spec": spec,
        "quick": bool(args.quick),
        "timing": {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_speedup": round(speedup, 2),
        },
        "report_bytes": len(cold_report),
        "concurrent": {
            "clients": CLIENTS,
            "deduped": stats1["broker"]["deduped"],
        },
        "warm_stats": {
            "store_hits": stats2["store"]["hits"],
            "store_resolved": stats2["broker"]["store_resolved"],
        },
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    print(f"results written to {OUT_PATH}")

    if failures:
        for f in failures:
            print("FATAL:", f, file=sys.stderr)
        return 1
    print(
        f"serve smoke ok: cold {cold_s * 1e3:.0f} ms, warm {warm_s * 1e3:.0f} ms, "
        "reports byte-identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
