#!/usr/bin/env python
"""Kernel hot-path benchmark: fast kernel vs the frozen legacy kernel.

Runs modified GHS and EOPT on fixed (n, seed) instances through both
:class:`~repro.sim.kernel.SynchronousKernel` (the optimized hot path) and
:class:`~repro.sim.legacy.LegacyKernel` (the pre-optimization reference),
interleaved and best-of-``--reps`` timed.  Three checks, each fatal:

* the two kernels must produce **bit-identical** energy / message / round
  stats and the same MST size (exit code 2 on mismatch);
* the stats must match the golden snapshot in
  ``benchmarks/golden/kernel_hotpath.json`` (exit code 1 on divergence —
  a semantic regression, not a perf one);
* results land in ``benchmarks/out/BENCH_kernel.json`` (timings, speedups,
  stats, and a ``repro.perf`` snapshot of the instrumented run).

Usage::

    python benchmarks/bench_kernel_hotpath.py --quick   # tier-2 smoke
    python benchmarks/bench_kernel_hotpath.py           # full (n=2000)
    python benchmarks/bench_kernel_hotpath.py --write-golden

Not a pytest file on purpose: the tier-2 smoke target calls it directly
so the golden comparison's exit code gates CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.runspec import RunSpec, execute  # noqa: E402

GOLDEN_PATH = REPO / "benchmarks" / "golden" / "kernel_hotpath.json"
OUT_PATH = REPO / "benchmarks" / "out" / "BENCH_kernel.json"

#: (algorithm, n, seed) per mode; quick is the tier-2 smoke subset.
QUICK_CONFIGS = [("MGHS", 600, 7), ("EOPT", 600, 7)]
FULL_CONFIGS = QUICK_CONFIGS + [("MGHS", 2000, 7), ("EOPT", 2000, 7)]


def _stats_record(report) -> dict:
    res = report.result
    return {
        "energy_total": res.stats.energy_total,
        "messages_total": int(res.stats.messages_total),
        "rounds": int(res.stats.rounds),
        "n_tree_edges": int(len(res.tree_edges)),
    }


def _run_once(alg: str, n: int, seed: int, kernel: str = "fast", **flags):
    spec = RunSpec(algorithm=alg, n=n, seed=seed, kernel=kernel, **flags)
    t0 = time.perf_counter()
    report = execute(spec)
    return report, time.perf_counter() - t0


def _trace_triage(alg: str, n: int, seed: int) -> str:
    """Re-run both kernels with tracing on and report the first divergent
    trace event — names the phase/round where the kernels parted ways."""
    from repro.trace.diff import diff_traces, format_divergence

    streams = []
    for kernel in ("legacy", "fast"):
        report, _ = _run_once(alg, n, seed, kernel=kernel, trace=True)
        streams.append(report.trace)
    return format_divergence(diff_traces(*streams), "legacy", "fast")


def bench_config(alg: str, n: int, seed: int, reps: int) -> dict:
    # Warm both paths (KD-tree build, allocator, branch predictors).
    _run_once(alg, n, seed, kernel="legacy")
    _run_once(alg, n, seed)
    legacy_times, new_times = [], []
    legacy_res = new_res = None
    for _ in range(reps):
        legacy_res, dt = _run_once(alg, n, seed, kernel="legacy")
        legacy_times.append(dt)
        new_res, dt = _run_once(alg, n, seed)
        new_times.append(dt)
    legacy_s, new_s = min(legacy_times), min(new_times)
    return {
        "alg": alg,
        "n": n,
        "seed": seed,
        "legacy_s": round(legacy_s, 4),
        "new_s": round(new_s, 4),
        "speedup": round(legacy_s / new_s, 2),
        "stats": _stats_record(new_res),
        "legacy_stats": _stats_record(legacy_res),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small-n smoke subset")
    ap.add_argument("--reps", type=int, default=None, help="timed reps (best-of)")
    ap.add_argument(
        "--write-golden",
        action="store_true",
        help="(re)write the golden stats snapshot instead of checking it",
    )
    args = ap.parse_args(argv)
    if args.reps is not None and args.reps < 1:
        ap.error(f"--reps must be >= 1, got {args.reps}")
    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    reps = args.reps if args.reps is not None else (1 if args.quick else 3)

    rows = []
    failures = []
    for alg, n, seed in configs:
        row = bench_config(alg, n, seed, reps)
        if row["stats"] != row["legacy_stats"]:
            failures.append(
                f"{alg} n={n} seed={seed}: fast kernel diverged from legacy: "
                f"{row['stats']} != {row['legacy_stats']}\n"
                + _trace_triage(alg, n, seed)
            )
        rows.append(row)
        print(
            f"{alg:5s} n={n:5d} seed={seed}  legacy {row['legacy_s']:7.3f}s  "
            f"new {row['new_s']:7.3f}s  speedup {row['speedup']:.2f}x"
        )
    if failures:
        for f in failures:
            print("FATAL:", f, file=sys.stderr)
        return 2

    golden = {f"{alg}:{n}:{seed}": row["stats"] for (alg, n, seed), row in zip(configs, rows)}
    if args.write_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        # Merge so quick/full runs keep each other's entries.
        merged = json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
        merged.update(golden)
        GOLDEN_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"golden written to {GOLDEN_PATH}")
    elif GOLDEN_PATH.exists():
        expected = json.loads(GOLDEN_PATH.read_text())
        for key, stats in golden.items():
            if key in expected and expected[key] != stats:
                failures.append(
                    f"golden divergence for {key}: got {stats}, expected {expected[key]}"
                )
    else:
        print(f"warning: no golden snapshot at {GOLDEN_PATH}; run --write-golden")

    # One instrumented pass (spec-managed perf) for the observability record.
    alg, n, seed = configs[0]
    report, _ = _run_once(alg, n, seed, perf=True)
    perf_snapshot = report.perf

    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(
        json.dumps(
            {
                "quick": args.quick,
                "reps": reps,
                "configs": rows,
                "perf": perf_snapshot,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"results written to {OUT_PATH}")

    if failures:
        for f in failures:
            print("FATAL:", f, file=sys.stderr)
        return 1
    min_speedup = min(row["speedup"] for row in rows)
    print(f"min speedup: {min_speedup:.2f}x (stats identical on both kernels)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
