#!/usr/bin/env python
"""Turbo-backend scaling benchmark: nodes/sec and peak RSS vs n.

Runs modified GHS through the turbo kernel (whole-round array programs)
at n in {10^4, 10^5, 10^6}, recording wall time, throughput in nodes/sec,
round counts and the peak-RSS counter sampled at round boundaries by
``repro.perf``.  The million-node instance is built through the
layout-aware instance cache with the turbo backend's ``chunked`` CSR
layout (memmap spill past the threshold), which is what lets it fit.

Three gates, each fatal:

* **equivalence** — turbo must be bit-identical to the fast kernel
  (energy / messages / rounds) at the small-n config, with trace-diff
  triage printed on divergence (exit 2);
* **golden stats** — the n=10^4 turbo stats must match
  ``benchmarks/golden/scale.json`` (exit 1 on divergence);
* **speedup** (``--gate`` or full mode) — turbo must be >= 10x the
  frozen legacy kernel on MGHS n=2000 (exit 3 below the bar).

Usage::

    python benchmarks/bench_scale.py --quick    # n=10^4 + gates
    python benchmarks/bench_scale.py            # full: up to n=10^6
    python benchmarks/bench_scale.py --gate     # perf-smoke speedup gate
    python benchmarks/bench_scale.py --write-golden

Not a pytest file on purpose: the make targets call it directly so the
exit codes gate CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.geometry.radius import (  # noqa: E402
    PAPER_GHS_RADIUS_CONST,
    connectivity_radius,
)
from repro.perf import PEAK_RSS_COUNTER  # noqa: E402
from repro.runspec import RunSpec, execute  # noqa: E402
from repro.sim import kernel_layout  # noqa: E402

GOLDEN_PATH = REPO / "benchmarks" / "golden" / "scale.json"
OUT_PATH = REPO / "benchmarks" / "out" / "BENCH_scale.json"

SEED = 7
QUICK_NS = [10_000]
FULL_NS = [10_000, 100_000, 1_000_000]
#: Speedup bar for the MGHS n=2000 turbo-vs-legacy gate.
SPEEDUP_BAR = 10.0
GATE_N = 2000
#: Small-n config for the bit-identical turbo-vs-fast equivalence gate.
EQUIV_N = 600


def _stats_record(report) -> dict:
    res = report.result
    return {
        "energy_total": res.stats.energy_total,
        "messages_total": int(res.stats.messages_total),
        "rounds": int(res.stats.rounds),
        "n_tree_edges": int(len(res.tree_edges)),
    }


def _run(n: int, *, kernel: str = "turbo", **flags):
    spec = RunSpec(algorithm="MGHS", n=n, seed=SEED, kernel=kernel, **flags)
    t0 = time.perf_counter()
    report = execute(spec)
    return report, time.perf_counter() - t0


def equivalence_gate() -> str | None:
    """Turbo vs fast at small n: bit-identical or a trace-diff triage."""
    fast, _ = _run(EQUIV_N, kernel="fast")
    turbo, _ = _run(EQUIV_N, kernel="turbo")
    if _stats_record(fast) == _stats_record(turbo):
        return None
    from repro.trace.diff import diff_traces, format_divergence

    streams = []
    for kernel in ("fast", "turbo"):
        rep, _ = _run(EQUIV_N, kernel=kernel, trace=True)
        streams.append(rep.trace)
    return (
        f"turbo diverged from fast at MGHS n={EQUIV_N} seed={SEED}: "
        f"{_stats_record(turbo)} != {_stats_record(fast)}\n"
        + format_divergence(diff_traces(*streams), "fast", "turbo")
    )


def speedup_gate(reps: int) -> dict:
    """MGHS n=2000 turbo vs the frozen legacy kernel, best-of-``reps``."""
    _run(GATE_N, kernel="legacy")  # warm
    _run(GATE_N, kernel="turbo")
    legacy_times, turbo_times = [], []
    legacy_rep = turbo_rep = None
    for _ in range(reps):
        legacy_rep, dt = _run(GATE_N, kernel="legacy")
        legacy_times.append(dt)
        turbo_rep, dt = _run(GATE_N, kernel="turbo")
        turbo_times.append(dt)
    legacy_s, turbo_s = min(legacy_times), min(turbo_times)
    return {
        "n": GATE_N,
        "legacy_s": round(legacy_s, 4),
        "turbo_s": round(turbo_s, 4),
        "speedup": round(legacy_s / turbo_s, 2),
        "bar": SPEEDUP_BAR,
        "stats_identical": _stats_record(legacy_rep) == _stats_record(turbo_rep),
    }


def scale_row(n: int) -> dict:
    """Build the chunked instance, run MGHS on turbo, record throughput."""
    from repro.experiments.instances import get_graph

    layout = kernel_layout("turbo")
    r = connectivity_radius(n, PAPER_GHS_RADIUS_CONST)
    t0 = time.perf_counter()
    g = get_graph(n, SEED, r, layout=layout)
    build_s = time.perf_counter() - t0
    m = int(g.m)
    report, run_s = _run(n, perf=True)
    counters = report.perf["counters"]
    row = {
        "n": n,
        "radius": r,
        "layout": layout,
        "edges": m,
        "build_s": round(build_s, 3),
        "run_s": round(run_s, 3),
        "nodes_per_s": round(n / run_s, 1),
        "peak_rss_bytes": int(counters.get(PEAK_RSS_COUNTER, 0)),
        "engine_rounds": int(counters.get("kernel.turbo_engine_rounds", 0)),
        "stats": _stats_record(report),
    }
    print(
        f"n={n:8d}  build {row['build_s']:8.2f}s  run {row['run_s']:8.2f}s  "
        f"{row['nodes_per_s']:10,.0f} nodes/s  "
        f"peak RSS {row['peak_rss_bytes'] / 2**20:8.0f} MiB"
    )
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="n=10^4 only")
    ap.add_argument(
        "--gate",
        action="store_true",
        help="speedup + equivalence gates only (perf-smoke)",
    )
    ap.add_argument("--reps", type=int, default=3, help="gate timing reps")
    ap.add_argument(
        "--write-golden",
        action="store_true",
        help="(re)write the golden stats snapshot instead of checking it",
    )
    args = ap.parse_args(argv)
    if args.reps < 1:
        ap.error(f"--reps must be >= 1, got {args.reps}")

    failure = equivalence_gate()
    if failure is not None:
        print("FATAL:", failure, file=sys.stderr)
        return 2

    gate = speedup_gate(args.reps)
    print(
        f"gate: MGHS n={GATE_N}  legacy {gate['legacy_s']:.3f}s  "
        f"turbo {gate['turbo_s']:.3f}s  speedup {gate['speedup']:.2f}x "
        f"(bar {SPEEDUP_BAR:.0f}x)"
    )
    if not gate["stats_identical"]:
        print("FATAL: turbo diverged from legacy at the gate config", file=sys.stderr)
        return 2
    if gate["speedup"] < SPEEDUP_BAR:
        print(
            f"FATAL: speedup {gate['speedup']:.2f}x below the "
            f"{SPEEDUP_BAR:.0f}x bar",
            file=sys.stderr,
        )
        return 3

    rows = []
    if not args.gate:
        for n in QUICK_NS if args.quick else FULL_NS:
            rows.append(scale_row(n))
        golden = {f"MGHS:{r['n']}:{SEED}": r["stats"] for r in rows if r["n"] <= 10_000}
        if args.write_golden:
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            merged = json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
            merged.update(golden)
            GOLDEN_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
            print(f"golden written to {GOLDEN_PATH}")
        elif GOLDEN_PATH.exists():
            expected = json.loads(GOLDEN_PATH.read_text())
            for key, stats in golden.items():
                if key in expected and expected[key] != stats:
                    print(
                        f"FATAL: golden divergence for {key}: got {stats}, "
                        f"expected {expected[key]}",
                        file=sys.stderr,
                    )
                    return 1
        else:
            print(f"warning: no golden snapshot at {GOLDEN_PATH}; run --write-golden")

    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    if args.gate and OUT_PATH.exists():
        # Gate-only runs refresh the timing gate without discarding the
        # scale rows a previous full run measured.
        try:
            prior = json.loads(OUT_PATH.read_text())
        except (OSError, ValueError):
            prior = {}
        rows = prior.get("scale", rows)
        args.quick = prior.get("quick", args.quick)
    OUT_PATH.write_text(
        json.dumps(
            {"quick": args.quick, "gate": gate, "scale": rows},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"results written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
