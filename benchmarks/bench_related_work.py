"""RW — the paper's Related-Work landscape as one measured table.

Sec. III positions four schemes (for RGGs, without/with coordinates):

| scheme | energy | tree |
|---|---|---|
| GHS [9]             | Θ(log² n)   | exact MST |
| Rand-NNT [14, 15]   | O(log n)    | O(log n)-approx |
| **EOPT (this paper)** | O(log n)  | **exact MST** |
| Co-NNT (this paper, coords) | O(1) | O(1)-approx |

This bench measures all four on shared instances and asserts each cell:
the energy ordering, the exactness claims, and the quality ordering.
"""

from __future__ import annotations


from repro.algorithms.connt import run_connt
from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_ghs
from repro.algorithms.randnnt import run_randnnt
from repro.experiments.report import format_table
from repro.geometry.points import uniform_points
from repro.mst.delaunay import euclidean_mst
from repro.mst.quality import same_tree, tree_cost

from conftest import write_artifact

N = 1500


def test_related_work_report(benchmark):
    pts = uniform_points(N, seed=0)

    def run_all():
        return {
            "GHS [9]": run_ghs(pts),
            "Rand-NNT [15]": run_randnnt(pts),
            "EOPT (paper)": run_eopt(pts),
            "Co-NNT (paper)": run_connt(pts),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    mst, _ = euclidean_mst(pts)
    opt_len = tree_cost(pts, mst)

    rows = []
    ratios = {}
    for name, res in results.items():
        ratio = tree_cost(pts, res.tree_edges) / opt_len
        ratios[name] = ratio
        rows.append(
            (
                name,
                f"{res.energy:.1f}",
                res.messages,
                "exact" if same_tree(res.tree_edges, mst) else f"{ratio:.3f}x",
                "no" if name != "Co-NNT (paper)" else "yes",
            )
        )
    text = format_table(
        ["scheme", "energy", "messages", "tree vs MST", "needs coords"], rows
    )
    write_artifact("RW", text)

    ghs, rand, eopt, co = (
        results["GHS [9]"],
        results["Rand-NNT [15]"],
        results["EOPT (paper)"],
        results["Co-NNT (paper)"],
    )
    # Energy landscape: GHS >> {Rand-NNT, EOPT} >> Co-NNT.
    assert ghs.energy > 3 * eopt.energy
    assert ghs.energy > 3 * rand.energy
    assert eopt.energy > co.energy
    assert rand.energy > co.energy
    # Exactness: GHS and EOPT exact; the NNTs are not.
    assert same_tree(ghs.tree_edges, mst)
    assert same_tree(eopt.tree_edges, mst)
    assert not same_tree(rand.tree_edges, mst)
    assert not same_tree(co.tree_edges, mst)
    # Quality: Co-NNT strictly better than Rand-NNT.
    assert ratios["Co-NNT (paper)"] < ratios["Rand-NNT [15]"]
    benchmark.extra_info["ratios"] = {k: float(v) for k, v in ratios.items()}
