"""ABL-RX — extension: reception-energy accounting (paper Sec. VIII).

The paper's metric counts only transmit energy and flags receive/idle
costs as future work.  With a constant per-reception cost, message *count*
starts to matter as much as message *length*: GHS's Theta(|E|) probes hurt
it twice.  This bench sweeps the rx cost and reports how the GHS-vs-EOPT
gap moves (EOPT stays ahead at every rx level).
"""

from __future__ import annotations

from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_ghs
from repro.experiments.report import format_table
from repro.geometry.points import uniform_points

from conftest import write_artifact

N = 800
RX_COSTS = (0.0, 1e-5, 1e-4, 1e-3)


def test_ablation_rx_report(benchmark):
    pts = uniform_points(N, seed=0)

    def run_grid():
        return [
            (rx, run_ghs(pts, rx_cost=rx), run_eopt(pts, rx_cost=rx))
            for rx in RX_COSTS
        ]

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for rx, ghs, eopt in results:
        g_tot = ghs.stats.total_energy_with_rx
        e_tot = eopt.stats.total_energy_with_rx
        rows.append(
            (
                f"{rx:g}",
                ghs.stats.receptions_total,
                eopt.stats.receptions_total,
                f"{g_tot:.1f}",
                f"{e_tot:.1f}",
                f"{g_tot / e_tot:.1f}x",
            )
        )
    text = format_table(
        ["rx cost", "GHS receptions", "EOPT receptions",
         "GHS total E", "EOPT total E", "gap"],
        rows,
    )
    write_artifact("ABL-RX", text)

    for rx, ghs, eopt in results:
        assert ghs.stats.total_energy_with_rx > eopt.stats.total_energy_with_rx
    # GHS hears far more traffic, so rising rx cost cannot shrink its bill
    # relative to rx=0 faster than EOPT's.
    base = results[0]
    heavy = results[-1]
    assert heavy[1].stats.total_energy_with_rx > base[1].stats.total_energy_with_rx
    benchmark.extra_info["rx_costs"] = list(RX_COSTS)
