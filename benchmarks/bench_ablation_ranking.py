"""ABL-K — ablation: diagonal vs lexicographic NNT ranking (Sec. VI).

The paper replaced Khan et al.'s (x, y)-lexicographic ranking with the
diagonal ranking precisely because a few lexicographic nodes must reach
Theta(1) away for a higher-ranked node, which breaks the unit-disk-radius
regime.  The diagonal ranking keeps every connect edge within
O(sqrt(log n / n)) whp (Lemma 6.3).  This bench measures max/total edge
statistics for both rankings across n.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import format_table
from repro.geometry.points import uniform_points
from repro.geometry.ranks import diagonal_ranks, lexicographic_ranks
from repro.mst.nnt import nearest_neighbor_tree
from repro.mst.quality import tree_cost

from conftest import write_artifact

NS = (500, 1000, 2000, 4000)


def test_ablation_ranking_report(benchmark):
    def run_grid():
        out = []
        for n in NS:
            pts = uniform_points(n, seed=0)
            rows = {}
            for name, ranker in (
                ("diagonal", diagonal_ranks),
                ("lexicographic", lexicographic_ranks),
            ):
                edges, lengths = nearest_neighbor_tree(pts, ranker(pts))
                rows[name] = (
                    float(lengths.max()),
                    tree_cost(pts, edges, 1.0),
                    tree_cost(pts, edges, 2.0),
                )
            out.append((n, rows))
        return out

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = []
    for n, rows in results:
        d_max, d_len, d_sq = rows["diagonal"]
        l_max, l_len, l_sq = rows["lexicographic"]
        unit_r = float(np.sqrt(np.log(n) / n))
        table.append(
            (
                n,
                f"{d_max / unit_r:.2f}",
                f"{l_max / unit_r:.2f}",
                f"{d_len:.1f}",
                f"{l_len:.1f}",
                f"{d_sq:.2f}",
                f"{l_sq:.2f}",
            )
        )
    text = format_table(
        [
            "n",
            "diag max/r2", "lex max/r2",
            "diag len", "lex len",
            "diag sum d^2", "lex sum d^2",
        ],
        table,
    )
    write_artifact("ABL-K", text)

    for n, rows in results:
        unit_r = float(np.sqrt(np.log(n) / n))
        # Diagonal ranking: all edges a small multiple of the unit-disk radius.
        assert rows["diagonal"][0] <= 3.0 * unit_r
        # Lexicographic ranking: strictly worse max edge on every instance.
        assert rows["lexicographic"][0] > rows["diagonal"][0]
    benchmark.extra_info["ns"] = list(NS)
