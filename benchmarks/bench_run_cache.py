#!/usr/bin/env python
"""Run-cache and instance-fabric smoke: cold vs warm, dedupe, SHM RSS.

The ``make cache-smoke`` gate for the store layer.  One duplicated
sweep of specs goes through ``execute_batch`` four ways:

* **cold** — process backend against a fresh sqlite store: every
  distinct spec computes once (in-batch singleflight), duplicates are
  fanned back, misses are written through;
* **warm** — the same batch again: everything answers from the store
  with no fan-out.  The warm repeat must be at least ``WARM_SPEEDUP_MIN``
  times faster than the cold pass (exit code 1 otherwise);
* **equivalence** — a storeless serial pass; cold, warm and serial
  reports must be byte-identical JSON (exit code 2: the cache returned
  something the engine would not have produced);
* **rss** — a perf-instrumented process pass with the shared-memory
  fabric on and then forced off (``REPRO_NO_SHM=1``), recording the
  max per-worker peak RSS either way plus the fabric's segment stats.

Headline stats per spec are diffed against the committed golden in
``benchmarks/golden/run_cache.json`` (exit code 1 on divergence).
Results land in ``benchmarks/out/BENCH_cache.json``.

Usage::

    python benchmarks/bench_run_cache.py
    python benchmarks/bench_run_cache.py --quick
    python benchmarks/bench_run_cache.py --write-golden

Not a pytest file on purpose: ``make cache-smoke`` calls it directly so
the gates' exit codes reach CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

import os  # noqa: E402

from repro.perf import PEAK_RSS_COUNTER  # noqa: E402
from repro.runspec import RunSpec, execute_batch, shutdown  # noqa: E402
from repro.store import ResultStore  # noqa: E402

GOLDEN_PATH = REPO / "benchmarks" / "golden" / "run_cache.json"
OUT_PATH = REPO / "benchmarks" / "out" / "BENCH_cache.json"

#: A warm (all-hits) repeat of the sweep must beat the cold pass by at
#: least this factor — the cache's whole point is skipping the compute.
WARM_SPEEDUP_MIN = 20.0

WORKERS = 4


def sweep_specs(quick: bool) -> list[RunSpec]:
    """The duplicated sweep: GHS/MGHS across seeds, every spec twice.

    Duplicates make the in-batch singleflight observable: the dedupe
    ratio reported below is ``len(specs) / distinct``.
    """
    n = 400 if quick else 800
    seeds = (0, 1) if quick else (0, 1, 2, 3)
    base = [
        RunSpec(algorithm=alg, n=n, seed=seed, kernel=kernel)
        for alg, kernel in (("GHS", "fast"), ("MGHS", "turbo"))
        for seed in seeds
    ]
    return base + base  # exact duplicates, fanned back from one compute


def _fail(msg: str) -> None:
    print(f"FATAL: {msg}", file=sys.stderr)
    sys.exit(2)


def _key(spec: RunSpec) -> str:
    return f"{spec.algorithm}:{spec.kernel}:n{spec.n}:s{spec.seed}"


def _headline(report) -> dict:
    res = report.result
    return {
        "energy_total": res.stats.energy_total,
        "messages_total": int(res.stats.messages_total),
        "rounds": int(res.stats.rounds),
        "n_tree_edges": int(len(res.tree_edges)),
    }


def _timed_batch(specs, store):
    t0 = time.perf_counter()
    reports = execute_batch(specs, backend="process", workers=WORKERS, store=store)
    return reports, time.perf_counter() - t0


def _max_worker_rss(specs) -> tuple[int, dict]:
    """Max per-worker peak RSS across a perf-instrumented process batch."""
    from repro.experiments import fabric

    shutdown()  # fresh pool so the current REPRO_NO_SHM setting applies
    reports = execute_batch(
        [s.with_(perf=True) for s in specs], backend="process", workers=WORKERS
    )
    peak = max(
        (r.perf or {}).get("counters", {}).get(PEAK_RSS_COUNTER, 0) for r in reports
    )
    stats = fabric.stats()
    shutdown()
    return int(peak), stats


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="smaller sweep")
    ap.add_argument(
        "--write-golden",
        action="store_true",
        help="(re)write the golden stats snapshot instead of checking it",
    )
    args = ap.parse_args(argv)

    specs = sweep_specs(args.quick)
    distinct = len({s.spec_hash() for s in specs})
    print(f"sweep: {len(specs)} specs, {distinct} distinct (quick={args.quick})")

    with tempfile.TemporaryDirectory(prefix="repro-cache-bench-") as tmp:
        store = ResultStore(Path(tmp) / "results.sqlite")

        cold, cold_s = _timed_batch(specs, store)
        misses = store.stats()["misses"]
        warm, warm_s = _timed_batch(specs, store)
        hits = store.stats()["hits"]
        store.close()

    if misses != distinct:
        _fail(f"cold pass computed {misses} specs, expected {distinct}")
    # Duplicates collapse in the singleflight before the store is asked,
    # so a fully-warm pass records one hit per *distinct* spec.
    if hits < distinct:
        _fail(f"warm pass hit {hits} times, expected >= {distinct}")

    # Equivalence: cached payloads must be byte-for-byte the engine's own.
    serial = execute_batch(specs, backend="serial")
    for spec, c, w, s in zip(specs, cold, warm, serial):
        if not (c.to_json() == w.to_json() == s.to_json()):
            _fail(f"{_key(spec)}: cold/warm/serial reports differ")

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"cold: {cold_s:.3f}s   warm: {warm_s:.3f}s   speedup: {speedup:.1f}x")

    rss_shm, fabric_shm = _max_worker_rss(specs)
    os.environ["REPRO_NO_SHM"] = "1"
    try:
        rss_noshm, fabric_noshm = _max_worker_rss(specs)
    finally:
        os.environ.pop("REPRO_NO_SHM", None)
    print(
        f"worker peak RSS: {rss_shm / 1e6:.1f} MB (shm, "
        f"{fabric_shm['published_segments']} segments) vs "
        f"{rss_noshm / 1e6:.1f} MB (rebuilt per worker)"
    )

    rows = {
        "sweep": {
            "specs": len(specs),
            "distinct": distinct,
            "dedupe_ratio": round(len(specs) / distinct, 3),
            "workers": WORKERS,
            "quick": bool(args.quick),
        },
        "timing": {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_speedup": round(speedup, 2),
        },
        "rss": {
            "peak_rss_shm_bytes": rss_shm,
            "peak_rss_noshm_bytes": rss_noshm,
            "published_segments": fabric_shm["published_segments"],
            "published_bytes": fabric_shm.get("published_bytes", 0),
        },
        "stats": {_key(s): _headline(r) for s, r in zip(specs, cold)},
    }

    failures = []
    if speedup < WARM_SPEEDUP_MIN:
        failures.append(
            f"warm speedup {speedup:.1f}x below the {WARM_SPEEDUP_MIN:.0f}x gate"
        )

    if args.write_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(rows["stats"], indent=2, sort_keys=True) + "\n")
        print(f"golden written to {GOLDEN_PATH}")
    elif GOLDEN_PATH.exists():
        expected = json.loads(GOLDEN_PATH.read_text())
        for key, stats in rows["stats"].items():
            if key in expected and expected[key] != stats:
                failures.append(
                    f"golden divergence for {key}: got {stats}, "
                    f"expected {expected[key]}"
                )
    else:
        print(f"warning: no golden snapshot at {GOLDEN_PATH}; run --write-golden")

    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    print(f"results written to {OUT_PATH}")

    if failures:
        for f in failures:
            print("FATAL:", f, file=sys.stderr)
        return 1
    print(
        f"{len(specs)} specs cached and verified "
        f"(dedupe {rows['sweep']['dedupe_ratio']}x, warm {speedup:.0f}x faster)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
