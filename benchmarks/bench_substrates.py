"""Microbenchmarks of the substrates the simulations stand on.

These are classic pytest-benchmark timings (many rounds, statistics) for
the hot building blocks: RGG construction, exact EMST, kernel message
throughput, percolation labeling, NNT queries.  They guard against
performance regressions that would make the paper-scale sweeps (n = 5000)
impractical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.points import uniform_points
from repro.geometry.potential import nearest_higher_rank_distance
from repro.geometry.radius import connectivity_radius
from repro.mst.delaunay import euclidean_mst
from repro.mst.kruskal import kruskal_mst
from repro.mst.prim import prim_mst
from repro.percolation.giant import analyze_percolation
from repro.rgg.build import build_rgg

N = 3000


@pytest.fixture(scope="module")
def points():
    return uniform_points(N, seed=0)


@pytest.fixture(scope="module")
def graph(points):
    return build_rgg(points, connectivity_radius(N))


def test_build_rgg(benchmark, points):
    g = benchmark(build_rgg, points, connectivity_radius(N))
    assert g.m > N


def test_euclidean_mst(benchmark, points):
    edges, _ = benchmark(euclidean_mst, points)
    assert len(edges) == N - 1


def test_kruskal_on_rgg(benchmark, graph):
    edges, _ = benchmark(kruskal_mst, graph.n, graph.edges, graph.lengths)
    assert len(edges) == N - 1


def test_prim_on_rgg(benchmark, graph):
    edges, _ = benchmark(prim_mst, graph)
    assert len(edges) == N - 1


def test_percolation_analysis(benchmark, points):
    rep = benchmark(analyze_percolation, points, 1.4 / np.sqrt(N))
    assert rep.n == N


def test_nearest_higher_rank(benchmark, points):
    d = benchmark(nearest_higher_rank_distance, points)
    assert np.isinf(d).sum() == 1


def test_kernel_broadcast_throughput(benchmark, points):
    """Messages/second through the kernel: one HELLO flood at r2."""
    from repro.sim.kernel import SynchronousKernel
    from repro.sim.node import NodeProcess

    class Silent(NodeProcess):
        def on_wake(self, signal, payload=()):
            self.ctx.local_broadcast(payload[0], "HELLO", self.id)

    r = connectivity_radius(N)

    def flood():
        k = SynchronousKernel(points, max_radius=r)
        k.add_nodes(Silent)
        k.start()
        k.wake(range(N), "go", (r,))
        k.run_until_quiescent()
        return k.stats()

    stats = benchmark(flood)
    assert stats.messages_total == N
