"""ABL-R — ablation: EOPT's step-1 radius constant c1.

DESIGN.md calls this trade-off out: too small a c1 gives no giant (step 2
degenerates toward plain modified GHS at r2), too large a c1 makes step 1
itself expensive.  The paper picked 1.4 "to have a giant component after
the first step"; this bench maps the energy landscape around that choice.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.eopt import run_eopt
from repro.experiments.report import format_table
from repro.geometry.points import uniform_points

from conftest import write_artifact

N = 1500
C1_GRID = (0.8, 1.0, 1.2, 1.4, 1.6, 2.0)


def test_ablation_radius_report(benchmark):
    pts = uniform_points(N, seed=0)

    def run_grid():
        return [run_eopt(pts, c1=c1) for c1 in C1_GRID]

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for c1, res in zip(C1_GRID, results):
        rows.append(
            (
                f"{c1:.1f}",
                f"{res.extras['giant_size'] / N:.1%}" if res.extras["giant_found"] else "none",
                res.extras["phases_step1"],
                res.extras["phases_step2"],
                f"{res.extras['step1_energy']:.2f}",
                f"{res.extras['step2_energy']:.2f}",
                f"{res.energy:.2f}",
            )
        )
    text = format_table(
        ["c1", "giant", "phases1", "phases2", "E step1", "E step2", "E total"],
        rows,
    )
    write_artifact("ABL-R", text)

    # All c1 produce the same exact MST — the ablation only moves energy.
    edges0 = {tuple(e) for e in results[0].tree_edges}
    for res in results[1:]:
        assert {tuple(e) for e in res.tree_edges} == edges0
    # The paper's 1.4 sits in the flat basin: within 2x of the grid optimum.
    energies = np.array([r.energy for r in results])
    paper_idx = C1_GRID.index(1.4)
    assert energies[paper_idx] <= 2.0 * energies.min()
    benchmark.extra_info["energies"] = [float(e) for e in energies]
