"""TAB1 — Sec. VII in-text quality comparison: Co-NNT vs exact MST.

Paper values: sum of edges 22.9 (Co-NNT) vs 20.8 (MST) at n=1000 and
50.5 vs 46.3 at n=5000; sum of squared edges 0.68 vs 0.52 (constants,
independent of n).  We regenerate all six numbers and assert they land
within 15% of the published ones.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_table
from repro.experiments.tables import (
    PAPER_TAB1_EDGE_SUMS,
    PAPER_TAB1_SQ_SUMS,
    tab1_quality,
)

from conftest import write_artifact


def test_tab1_report(benchmark):
    rows = benchmark.pedantic(
        tab1_quality, kwargs={"ns": (1000, 5000), "seed": 0}, rounds=1, iterations=1
    )
    paper_sq_connt, paper_sq_mst = PAPER_TAB1_SQ_SUMS
    table_rows = []
    for row in rows:
        p_connt, p_mst = PAPER_TAB1_EDGE_SUMS[row.n]
        table_rows.append(
            (
                row.n,
                f"{row.connt_edge_sum:.1f}",
                f"{p_connt}",
                f"{row.mst_edge_sum:.1f}",
                f"{p_mst}",
                f"{row.connt_sq_sum:.2f}",
                f"{paper_sq_connt}",
                f"{row.mst_sq_sum:.2f}",
                f"{paper_sq_mst}",
            )
        )
    text = format_table(
        [
            "n",
            "CoNNT len", "paper",
            "MST len", "paper",
            "CoNNT sum d^2", "paper",
            "MST sum d^2", "paper",
        ],
        table_rows,
    )
    write_artifact("TAB1", text)

    for row in rows:
        p_connt, p_mst = PAPER_TAB1_EDGE_SUMS[row.n]
        assert row.connt_edge_sum == pytest.approx(p_connt, rel=0.15)
        assert row.mst_edge_sum == pytest.approx(p_mst, rel=0.15)
        benchmark.extra_info[f"len_ratio_n{row.n}"] = row.length_ratio
    # The squared sums are n-independent constants near the paper's values.
    assert rows[0].connt_sq_sum == pytest.approx(paper_sq_connt, rel=0.3)
    assert rows[0].mst_sq_sum == pytest.approx(paper_sq_mst, rel=0.3)
    assert abs(rows[1].connt_sq_sum - rows[0].connt_sq_sum) < 0.3
