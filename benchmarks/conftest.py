"""Shared fixtures for the benchmark harness.

Each paper artifact (FIG1/FIG2/FIG3a/FIG3b/TAB1/THM52/LB + ablations) has
one bench file.  Benches both *time* the relevant computation (via
pytest-benchmark) and *regenerate the artifact*: the rows/series are
printed, attached to the benchmark JSON as ``extra_info``, and written to
``benchmarks/out/<ID>.txt`` so a bench run leaves the paper-vs-measured
record on disk.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — use the paper's full n-grid (50..5000) instead
  of the default truncated grid; slower but exactly Sec. VII's sweep.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import BENCH_NS, PAPER_NS, SweepConfig
from repro.experiments.runner import sweep_energy

OUT_DIR = Path(__file__).parent / "out"


def write_artifact(exp_id: str, text: str) -> Path:
    """Persist a regenerated table/figure under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{exp_id}.txt"
    path.write_text(text + "\n")
    print(f"\n[{exp_id}] written to {path}\n{text}")
    return path


@pytest.fixture(scope="session")
def sweep_config() -> SweepConfig:
    ns = PAPER_NS if os.environ.get("REPRO_BENCH_FULL") == "1" else BENCH_NS
    seeds = (0, 1) if os.environ.get("REPRO_BENCH_FULL") == "1" else (0,)
    return SweepConfig(ns=ns, seeds=seeds)


@pytest.fixture(scope="session")
def fig3_sweep(sweep_config):
    """The Fig. 3 energy sweep, computed once per bench session."""
    return sweep_energy(sweep_config)
