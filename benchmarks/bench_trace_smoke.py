#!/usr/bin/env python
"""Trace-plane smoke gate: record, export, round-trip and self-diff.

Runs a small modified-GHS instance with tracing on, then checks the
machinery end to end, each failure fatal:

* the event stream is non-empty, well-bracketed (``run_start`` first,
  ``run_end`` last, at least one ``phase_end``) — exit 2 otherwise;
* the JSONL export round-trips to the exact in-memory events and a
  legacy-kernel run of the same instance self-diffs clean
  (``diff_files`` → no divergence) — exit 2 otherwise;
* with tracing **disabled**, a repeat run leaves the registry empty and
  the headline stats bit-identical to the traced run — the
  zero-cost-when-off contract — exit 2 otherwise.

Usage::

    python benchmarks/bench_trace_smoke.py          # make trace-smoke

Not a pytest file on purpose: the make target calls it directly so the
exit code gates CI, mirroring the other ``bench_*`` gates.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.algorithms.ghs import run_modified_ghs  # noqa: E402
from repro.geometry.points import uniform_points  # noqa: E402
from repro.sim.legacy import LegacyKernel  # noqa: E402
from repro.trace import load_jsonl, trace  # noqa: E402
from repro.trace.diff import diff_files, format_divergence  # noqa: E402

N, SEED = 400, 7


def _traced_run(pts, **kwargs):
    trace.reset()
    trace.enable()
    try:
        res = run_modified_ghs(pts, **kwargs)
        return res, trace.snapshot()
    finally:
        trace.disable()
        trace.reset()


def main() -> int:
    pts = uniform_points(N, seed=SEED)
    res, events = _traced_run(pts)
    fast_path = Path(tempfile.mkstemp(suffix=".jsonl")[1])
    legacy_path = Path(tempfile.mkstemp(suffix=".jsonl")[1])
    try:
        # -- stream shape ----------------------------------------------------
        if not events:
            print("FATAL: traced run recorded no events", file=sys.stderr)
            return 2
        kinds = [e["ev"] for e in events]
        if (
            kinds[0] != "run_start"
            or kinds[-1] != "run_end"
            or "phase_end" not in kinds
        ):
            print(
                f"FATAL: malformed stream (first={kinds[0]}, last={kinds[-1]}, "
                f"phase_end={'phase_end' in kinds})",
                file=sys.stderr,
            )
            return 2
        print(f"traced MGHS n={N} seed={SEED}: {len(events)} events")

        # -- JSONL round trip ------------------------------------------------
        trace.merge(events)
        trace.export_jsonl(fast_path)
        trace.reset()
        if load_jsonl(fast_path) != events:
            print("FATAL: JSONL round trip is not exact", file=sys.stderr)
            return 2
        print(f"JSONL round trip exact ({fast_path.stat().st_size} bytes)")

        # -- legacy-kernel self-diff -----------------------------------------
        _, legacy_events = _traced_run(pts, kernel_cls=LegacyKernel)
        trace.merge(legacy_events)
        trace.export_jsonl(legacy_path)
        trace.reset()
        d = diff_files(fast_path, legacy_path)
        if d is not None:
            print("FATAL: legacy/fast trace divergence", file=sys.stderr)
            print(format_divergence(d, "fast", "legacy"), file=sys.stderr)
            return 2
        print("legacy vs fast kernel: traces identical")

        # -- zero-cost-when-off contract -------------------------------------
        quiet = run_modified_ghs(pts)
        if trace.events or trace.enabled:
            print("FATAL: disabled registry accumulated state", file=sys.stderr)
            return 2
        if (
            quiet.stats.energy_total != res.stats.energy_total
            or quiet.stats.messages_total != res.stats.messages_total
            or quiet.stats.rounds != res.stats.rounds
        ):
            print(
                "FATAL: tracing perturbed the run: "
                f"({quiet.stats.energy_total}, {quiet.stats.messages_total}, "
                f"{quiet.stats.rounds}) != ({res.stats.energy_total}, "
                f"{res.stats.messages_total}, {res.stats.rounds})",
                file=sys.stderr,
            )
            return 2
        print("tracing off: registry empty, stats bit-identical")
        return 0
    finally:
        fast_path.unlink(missing_ok=True)
        legacy_path.unlink(missing_ok=True)


if __name__ == "__main__":
    raise SystemExit(main())
