"""THM52 — Theorem 5.2 empirics: giant component + O(log^2 n) leftovers.

At r1 = 1.4 sqrt(1/n) (the paper's step-1 radius) we measure, across n:
the giant fraction (Theta(n) nodes), the largest non-giant component, and
the implied beta in 'beta log^2 n'.  Thm 5.2 predicts the giant fraction
stays bounded away from 0 and beta stays bounded as n grows.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.tables import thm52_giant

from conftest import write_artifact


def test_thm52_report(benchmark):
    rows = benchmark.pedantic(
        thm52_giant,
        kwargs={"ns": (500, 1000, 2000, 4000), "c1": 1.4, "seed": 0},
        rounds=1,
        iterations=1,
    )
    text = format_table(
        ["n", "r1", "giant frac", "2nd component", "beta = 2nd/log^2 n"],
        [
            (
                r.n,
                f"{r.radius:.4f}",
                f"{r.giant_fraction:.1%}",
                r.second_component,
                f"{r.beta_estimate:.2f}",
            )
            for r in rows
        ],
    )
    write_artifact("THM52", text)

    for r in rows:
        assert r.giant_fraction > 0.5
        assert r.beta_estimate < 5.0
    benchmark.extra_info["max_beta"] = max(r.beta_estimate for r in rows)


def test_time_percolation_analysis(benchmark):
    """Wall-clock of one full percolation analysis at n=4000."""
    from repro.geometry.points import uniform_points
    from repro.geometry.radius import giant_radius
    from repro.percolation.giant import analyze_percolation

    pts = uniform_points(4000, seed=0)
    r = giant_radius(4000)
    benchmark(analyze_percolation, pts, r)
