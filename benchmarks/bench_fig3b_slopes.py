"""FIG3b — Fig. 3(b): log(energy) vs log log n and the fitted slopes.

The paper reads slopes ~2 (GHS), ~1 (EOPT), ~0 (Co-NNT) off this plot —
the powers of log n in each algorithm's energy law.  We reproduce the
fit numerically and assert the ordering and rough magnitudes.  (At finite
n the GHS fit runs a bit above 2 because the |E| term is still ramping
up; the paper's full 50..5000 grid shows the same bowing.)
"""

from __future__ import annotations

from repro.experiments.figures import fig3b_plot, fig3b_slopes
from repro.experiments.report import format_table

from conftest import write_artifact


def test_fig3b_report(benchmark, fig3_sweep):
    fits = benchmark.pedantic(
        fig3b_slopes, args=(fig3_sweep,), kwargs={"min_n": 100}, rounds=1, iterations=1
    )
    rows = [
        (alg, f"{fit.slope:.2f}", f"{fit.r_squared:.3f}", paper)
        for (alg, fit), paper in zip(fits.items(), ("2", "1", "0"))
    ]
    text = (
        format_table(["algorithm", "slope", "R^2", "paper slope"], rows)
        + "\n\n"
        + fig3b_plot(fig3_sweep, min_n=100)
    )
    write_artifact("FIG3b", text)
    for alg, fit in fits.items():
        benchmark.extra_info[f"slope_{alg}"] = fit.slope

    assert fits["GHS"].slope > fits["EOPT"].slope > fits["Co-NNT"].slope
    assert 1.4 < fits["GHS"].slope < 3.5     # log^2 regime (finite-n bowing)
    assert 0.4 < fits["EOPT"].slope < 1.8    # log regime
    assert abs(fits["Co-NNT"].slope) < 0.4   # flat
