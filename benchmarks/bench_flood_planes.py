#!/usr/bin/env python
"""Flood-plane benchmark: plane vs per-message HELLO/ANNOUNCE delivery.

Runs modified GHS and EOPT on fixed (n, seed) instances through the fast
kernel twice — ``planes=False`` (per-message ``Message`` dispatch, the
PR-1 hot path) and ``planes=True`` (vectorized flood planes) —
interleaved and best-of-``--reps`` timed.  Alongside wall-clock it reads
the ``repro.perf`` stage timers to isolate the *flood-dominated* stages
(hello + phases; for EOPT, both steps' hello + phases).  Checks, each
fatal:

* both paths must produce **bit-identical** energy / message / round
  stats and the same MST size, and the plane path must actually engage
  (``kernel.plane_sends > 0``) — exit code 2 on violation;
* the stats must match the golden snapshot in
  ``benchmarks/golden/flood_planes.json`` (exit code 1 on divergence — a
  semantic regression, not a perf one);
* on the full run, the flood-stage speedup for modified GHS at n=2000
  must be >= 3x (exit code 3) — the tentpole's target;
* results land in ``benchmarks/out/BENCH_planes.json``.

Usage::

    python benchmarks/bench_flood_planes.py --quick   # tier-2 smoke
    python benchmarks/bench_flood_planes.py           # full (n=2000)
    python benchmarks/bench_flood_planes.py --write-golden

Not a pytest file on purpose: the tier-2 smoke target calls it directly
so the golden comparison's exit code gates CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.algorithms.eopt import run_eopt  # noqa: E402
from repro.algorithms.ghs import run_modified_ghs  # noqa: E402
from repro.geometry.points import uniform_points  # noqa: E402
from repro.perf import perf  # noqa: E402

GOLDEN_PATH = REPO / "benchmarks" / "golden" / "flood_planes.json"
OUT_PATH = REPO / "benchmarks" / "out" / "BENCH_planes.json"

RUNNERS = {"MGHS": run_modified_ghs, "EOPT": run_eopt}

#: Stage timers whose sum is the flood-dominated portion of a run.
FLOOD_TIMERS = {
    "MGHS": ("mghs.hello", "mghs.phases"),
    "EOPT": (
        "eopt.step1.hello",
        "eopt.step1.phases",
        "eopt.step2.hello",
        "eopt.step2.phases",
    ),
}

#: (algorithm, n, seed) per mode; quick is the tier-2 smoke subset.
QUICK_CONFIGS = [("MGHS", 600, 7), ("EOPT", 600, 7)]
FULL_CONFIGS = QUICK_CONFIGS + [("MGHS", 2000, 7), ("EOPT", 2000, 7)]

#: Tentpole acceptance gate: flood-stage speedup on this config (full runs).
GATE_CONFIG = ("MGHS", 2000, 7)
GATE_SPEEDUP = 3.0


def _stats_record(res) -> dict:
    return {
        "energy_total": res.stats.energy_total,
        "messages_total": int(res.stats.messages_total),
        "rounds": int(res.stats.rounds),
        "n_tree_edges": int(len(res.tree_edges)),
    }


def _run_once(alg: str, pts, planes: bool):
    """One instrumented run: (result, wall_s, flood_s, plane_sends)."""
    perf.reset()
    perf.enable()
    t0 = time.perf_counter()
    res = RUNNERS[alg](pts, planes=planes)
    wall = time.perf_counter() - t0
    snap = perf.snapshot()
    perf.disable()
    flood = sum(
        snap["timers"][t]["total_s"]
        for t in FLOOD_TIMERS[alg]
        if t in snap["timers"]
    )
    return res, wall, flood, snap["counters"].get("kernel.plane_sends", 0)


def bench_config(alg: str, n: int, seed: int, reps: int) -> dict:
    pts = uniform_points(n, seed=seed)
    # Warm both paths (KD-tree build, allocator, branch predictors).
    _run_once(alg, pts, planes=False)
    _run_once(alg, pts, planes=True)
    off_wall, off_flood, on_wall, on_flood = [], [], [], []
    off_res = on_res = None
    plane_sends = 0
    for _ in range(reps):
        off_res, w, f, _s = _run_once(alg, pts, planes=False)
        off_wall.append(w)
        off_flood.append(f)
        on_res, w, f, plane_sends = _run_once(alg, pts, planes=True)
        on_wall.append(w)
        on_flood.append(f)
    return {
        "alg": alg,
        "n": n,
        "seed": seed,
        "permsg_s": round(min(off_wall), 4),
        "planes_s": round(min(on_wall), 4),
        "speedup": round(min(off_wall) / min(on_wall), 2),
        "permsg_flood_s": round(min(off_flood), 4),
        "planes_flood_s": round(min(on_flood), 4),
        "flood_speedup": round(min(off_flood) / min(on_flood), 2),
        "plane_sends": int(plane_sends),
        "stats": _stats_record(on_res),
        "permsg_stats": _stats_record(off_res),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small-n smoke subset")
    ap.add_argument("--reps", type=int, default=None, help="timed reps (best-of)")
    ap.add_argument(
        "--write-golden",
        action="store_true",
        help="(re)write the golden stats snapshot instead of checking it",
    )
    args = ap.parse_args(argv)
    if args.reps is not None and args.reps < 1:
        ap.error(f"--reps must be >= 1, got {args.reps}")
    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    reps = args.reps if args.reps is not None else (1 if args.quick else 3)

    rows = []
    failures = []
    for alg, n, seed in configs:
        row = bench_config(alg, n, seed, reps)
        if row["stats"] != row["permsg_stats"]:
            failures.append(
                f"{alg} n={n} seed={seed}: plane path diverged from "
                f"per-message: {row['stats']} != {row['permsg_stats']}"
            )
        if row["plane_sends"] == 0:
            failures.append(
                f"{alg} n={n} seed={seed}: plane path never engaged "
                "(kernel.plane_sends == 0) — nothing was benchmarked"
            )
        rows.append(row)
        print(
            f"{alg:5s} n={n:5d} seed={seed}  permsg {row['permsg_s']:7.3f}s  "
            f"planes {row['planes_s']:7.3f}s  speedup {row['speedup']:.2f}x  "
            f"(flood stages {row['flood_speedup']:.2f}x)"
        )
    if failures:
        for f in failures:
            print("FATAL:", f, file=sys.stderr)
        return 2

    golden = {f"{alg}:{n}:{seed}": row["stats"] for (alg, n, seed), row in zip(configs, rows)}
    if args.write_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        # Merge so quick/full runs keep each other's entries.
        merged = json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
        merged.update(golden)
        GOLDEN_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"golden written to {GOLDEN_PATH}")
    elif GOLDEN_PATH.exists():
        expected = json.loads(GOLDEN_PATH.read_text())
        for key, stats in golden.items():
            if key in expected and expected[key] != stats:
                failures.append(
                    f"golden divergence for {key}: got {stats}, expected {expected[key]}"
                )
    else:
        print(f"warning: no golden snapshot at {GOLDEN_PATH}; run --write-golden")

    gate = None
    for (alg, n, seed), row in zip(configs, rows):
        if (alg, n, seed) == GATE_CONFIG:
            gate = row["flood_speedup"]

    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(
        json.dumps(
            {
                "quick": args.quick,
                "reps": reps,
                "configs": rows,
                "gate": {
                    "config": list(GATE_CONFIG),
                    "required_flood_speedup": GATE_SPEEDUP,
                    "measured_flood_speedup": gate,
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"results written to {OUT_PATH}")

    if failures:
        for f in failures:
            print("FATAL:", f, file=sys.stderr)
        return 1
    if gate is not None and gate < GATE_SPEEDUP:
        print(
            f"FATAL: flood-stage speedup {gate:.2f}x on "
            f"{GATE_CONFIG[0]} n={GATE_CONFIG[1]} is below the "
            f"{GATE_SPEEDUP:.0f}x target",
            file=sys.stderr,
        )
        return 3
    print("stats identical on both paths" + (f"; gate {gate:.2f}x >= {GATE_SPEEDUP:.0f}x" if gate is not None else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
