"""ABL-KNN — fixed-radius vs K-closest connectivity models.

Thm 5.2 proves the giant-component property for the fixed-radius model
``r = sqrt(c1/n)``; the paper notes the statement parallels Santis et
al. [25], whose model connects each node to its K closest neighbours.
This bench puts the two side by side at matched expected degree: giant
fraction, largest leftover component, and the implied beta constant.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import format_table
from repro.geometry.points import uniform_points
from repro.geometry.radius import giant_radius
from repro.rgg.build import build_rgg
from repro.rgg.components import component_sizes
from repro.rgg.knn import knn_graph

from conftest import write_artifact

N = 3000


def test_ablation_knn_report(benchmark):
    pts = uniform_points(N, seed=0)
    log2n = float(np.log(N) ** 2)

    def run_grid():
        rows = []
        # Fixed-radius model across c1.
        for c1 in (1.0, 1.4, 2.0):
            g = build_rgg(pts, giant_radius(N, c1))
            sizes = component_sizes(g)
            second = int(sizes[1]) if len(sizes) > 1 else 0
            rows.append(
                (f"radius c1={c1}", g.m, f"{sizes[0] / N:.1%}", second,
                 f"{second / log2n:.2f}")
            )
        # K-closest model across K.
        for k in (1, 2, 3, 5):
            g = knn_graph(pts, k)
            sizes = component_sizes(g)
            second = int(sizes[1]) if len(sizes) > 1 else 0
            rows.append(
                (f"K-closest K={k}", g.m, f"{sizes[0] / N:.1%}", second,
                 f"{second / log2n:.2f}")
            )
        return rows

    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    text = format_table(
        ["model", "edges", "giant", "2nd comp", "beta"], rows
    )
    write_artifact("ABL-KNN", text)

    by_name = {r[0]: r for r in rows}
    # Both supercritical settings show a dominant giant...
    assert float(by_name["radius c1=1.4"][2].rstrip("%")) > 50
    assert float(by_name["K-closest K=3"][2].rstrip("%")) > 90
    # ...and K=1 shatters (mutual-nearest-neighbour chains).
    assert float(by_name["K-closest K=1"][2].rstrip("%")) < 10
