#!/usr/bin/env python
"""Fault-resilience benchmark: recovery cost vs drop rate.

Runs modified GHS and EOPT on a fixed instance across drop rates
``p in {0, 0.05, 0.1, 0.2}`` and reports the *price of recovery*: energy,
messages and rounds relative to the fault-free run, plus the fault-plane
breakdown (drops / duplicates).  Checks, each fatal (exit code 2):

* at ``p = 0`` the run must be **bit-identical** to the faults-off run —
  the fault plane must cost nothing when it injects nothing;
* at every ``p`` the recovered tree must equal the fault-free MST
  exactly — recovery is not allowed to trade correctness for progress;
* drops must actually occur for ``p > 0`` (the plan engaged).

Results land in ``benchmarks/out/BENCH_faults.json``.

Usage::

    python benchmarks/bench_faults.py --quick   # n=500 smoke (make chaos)
    python benchmarks/bench_faults.py           # full (n=2000)

Not a pytest file on purpose: ``make chaos`` calls it directly so the
exit code gates CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.mst.quality import same_tree  # noqa: E402
from repro.runspec import RunSpec, execute  # noqa: E402
from repro.sim.faults import FaultPlan  # noqa: E402

OUT_PATH = REPO / "benchmarks" / "out" / "BENCH_faults.json"

ALGORITHMS = ("MGHS", "EOPT")
DROP_RATES = (0.0, 0.05, 0.1, 0.2)
FAULT_SEED = 0
INSTANCE_SEED = 7


def _fail(msg: str) -> None:
    print(f"FATAL: {msg}", file=sys.stderr)
    sys.exit(2)


def _record(report, wall: float) -> dict:
    st = report.result.stats
    return {
        "energy": st.energy_total,
        "messages": int(st.messages_total),
        "rounds": int(st.rounds),
        "n_tree_edges": int(len(report.result.tree_edges)),
        "dropped": int(st.dropped_total),
        "dup_delivered": int(st.dup_delivered_total),
        "wall_s": round(wall, 3),
    }


def bench(n: int) -> dict:
    out: dict = {"n": n, "instance_seed": INSTANCE_SEED, "algorithms": {}}
    for alg in ALGORITHMS:
        base_spec = RunSpec(algorithm=alg, n=n, seed=INSTANCE_SEED)
        t0 = time.perf_counter()
        base = execute(base_spec)
        base_wall = time.perf_counter() - t0
        rows = {"baseline": _record(base, base_wall)}
        for p in DROP_RATES:
            spec = base_spec.with_(faults=FaultPlan(seed=FAULT_SEED, drop_rate=p))
            t0 = time.perf_counter()
            report = execute(spec)
            wall = time.perf_counter() - t0
            rec = _record(report, wall)
            rec["drop_rate"] = p
            rec["energy_overhead"] = rec["energy"] / rows["baseline"]["energy"]
            rows[f"p={p}"] = rec

            if not same_tree(report.result.tree_edges, base.result.tree_edges):
                _fail(f"{alg} n={n} p={p}: recovered tree != fault-free MST")
            if p == 0.0:
                for key in ("energy", "messages", "rounds"):
                    if rec[key] != rows["baseline"][key]:
                        _fail(
                            f"{alg} n={n}: null fault plan perturbed {key} "
                            f"({rec[key]} != {rows['baseline'][key]})"
                        )
            elif rec["dropped"] == 0:
                _fail(f"{alg} n={n} p={p}: fault plane never engaged")
        out["algorithms"][alg] = rows
        print(f"{alg} n={n}:")
        for label, rec in rows.items():
            over = rec.get("energy_overhead")
            over_s = f"  energy x{over:.2f}" if over is not None else ""
            print(
                f"  {label:<9} energy={rec['energy']:.2f} "
                f"msgs={rec['messages']} rounds={rec['rounds']} "
                f"dropped={rec['dropped']}{over_s}"
            )
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="n=500 smoke")
    args = ap.parse_args()
    n = 500 if args.quick else 2000
    result = bench(n)
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nresults written to {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
