"""EXT-C — extension: RBN contention resolution (paper Sec. VIII).

The paper claims its algorithms survive the Radio Broadcast Network
interference model "with an increase in the running time ... and in the
energy usage by a constant factor".  The :class:`ContentionKernel`
serialises each round's conflicting transmissions into interference-free
slots; this bench verifies on a live EOPT run that

* the tree and the (TX) energy are *identical* to the collision-free run,
* only the round count inflates.
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import collect_tree_edges
from repro.algorithms.ghs.driver import hello_round, run_ghs_phases
from repro.algorithms.ghs.node import GHSNode
from repro.experiments.report import format_table
from repro.geometry.points import uniform_points
from repro.geometry.radius import connectivity_radius
from repro.mst.quality import same_tree
from repro.sim.interference import ContentionKernel
from repro.sim.kernel import SynchronousKernel

from conftest import write_artifact

N = 200


def run_mghs(kernel_cls):
    pts = uniform_points(N, seed=0)
    r = connectivity_radius(N)
    k = kernel_cls(pts, max_radius=r)
    k.add_nodes(lambda i, ctx: GHSNode(i, ctx, use_tests=False, announce=True))
    k.start()
    hello_round(k, r)
    run_ghs_phases(k, k.nodes)
    edges = collect_tree_edges((nd.id, nd.tree_edges) for nd in k.nodes)
    return edges, k


def test_contention_report(benchmark):
    def run_both():
        base_edges, base_k = run_mghs(SynchronousKernel)
        cont_edges, cont_k = run_mghs(ContentionKernel)
        return base_edges, base_k, cont_edges, cont_k

    base_edges, base_k, cont_edges, cont_k = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    base, cont = base_k.stats(), cont_k.stats()
    rows = [
        ("tree edges", len(base_edges), len(cont_edges)),
        ("energy", f"{base.energy_total:.2f}", f"{cont.energy_total:.2f}"),
        ("messages", base.messages_total, cont.messages_total),
        ("rounds", base.rounds, cont.rounds),
        ("slots / worst round", "-", f"{cont_k.max_slot_factor}"),
    ]
    text = format_table(["metric", "collision-free", "RBN contention"], rows)
    write_artifact("EXT-C", text)

    assert same_tree(base_edges, cont_edges)
    assert cont.energy_total == pytest.approx(base.energy_total)
    assert cont.messages_total == base.messages_total
    assert cont.rounds >= base.rounds
    benchmark.extra_info["round_inflation"] = cont.rounds / max(base.rounds, 1)
