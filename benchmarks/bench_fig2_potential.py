"""FIG2 — Fig. 2 and Lemmas 6.1-6.3: potential-region geometry.

The paper's Sec. VI analysis rests on three measurable facts:

* Lemma 6.1 — every node's potential angle alpha_u >= 1/2 radian;
* Lemma 6.2 / Thm 6.1 — E[d_u^2] <= 2/(n alpha_u), so the NNT's expected
  squared-edge sum is at most 4;
* Lemma 6.3 — all d_u <= c sqrt(log n / n) whp, so the protocol works in
  the unit-disk regime.

We measure all three on a sweep of instances.
"""

from __future__ import annotations

from repro.experiments.figures import fig2_potential
from repro.experiments.report import format_table

from conftest import write_artifact


def test_fig2_report(benchmark):
    def run():
        return [fig2_potential(n=n, seed=0) for n in (500, 1000, 2000, 4000)]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            r.n,
            f"{r.min_potential_angle:.3f}",
            f"{r.n * r.mean_sq_connect_distance:.2f}",
            f"{r.n * r.expected_sq_bound:.2f}",
            f"{r.lemma63_constant:.2f}",
        )
        for r in results
    ]
    text = format_table(
        [
            "n",
            "min alpha (>=0.5)",
            "n*E[d^2] (<=4)",
            "n*bound (Lemma 6.2)",
            "c in Lemma 6.3",
        ],
        rows,
    )
    write_artifact("FIG2", text)

    for r in results:
        assert r.min_potential_angle >= 0.5
        assert r.n * r.mean_sq_connect_distance <= 4.0
        assert r.mean_sq_connect_distance <= r.expected_sq_bound
        assert r.lemma63_constant < 3.0
    benchmark.extra_info["min_alpha"] = min(r.min_potential_angle for r in results)
