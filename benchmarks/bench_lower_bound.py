"""LB — the lower-bound constants of Secs. III-IV.

Three curves:

* ``L_MST(V)`` (Omega(1) bound): sum d^2 over the exact MST — stable
  around ~0.5 across n;
* Lemma 4.1: the energy to reach your log(n)-th nearest neighbour is at
  least k/(b n) — we exhibit the empirical b;
* the Omega(log n) curve of Thm 4.1, to compare against the measured
  EOPT energies (EOPT must sit above it: it is a *lower* bound).
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.tables import lower_bound_table

from conftest import write_artifact


def test_lower_bound_report(benchmark, fig3_sweep):
    rows = benchmark.pedantic(
        lower_bound_table,
        kwargs={"ns": (500, 1000, 2000, 4000), "seed": 0},
        rounds=1,
        iterations=1,
    )
    text = format_table(
        ["n", "L_MST (Omega(1))", "k", "min kNN energy", "Lemma4.1 b", "log n / pi"],
        [
            (
                r.n,
                f"{r.l_mst:.3f}",
                r.knn_k,
                f"{r.knn_min_energy:.2e}",
                f"{r.lemma41_b:.1f}",
                f"{r.omega_log_curve:.2f}",
            )
            for r in rows
        ],
    )
    write_artifact("LB", text)

    # L_MST is Theta(1): bounded, non-vanishing.
    for r in rows:
        assert 0.2 < r.l_mst < 1.5
        assert r.lemma41_b > 0.5
    # Every measured EOPT energy respects the Omega(log n) lower bound.
    by_n = {r.n: r for r in rows}
    for i, n in enumerate(fig3_sweep.ns):
        if int(n) in by_n:
            assert fig3_sweep.mean_energy("EOPT")[i] > by_n[int(n)].omega_log_curve
    benchmark.extra_info["l_mst"] = [r.l_mst for r in rows]
