"""ABL-G — ablation: original GHS vs modified GHS (Sec. V-A's change).

The modification replaces per-edge TEST/ACCEPT/REJECT probing (2 unicasts
per probe, Theta(|E|) probes over a run) with per-phase ANNOUNCE
broadcasts (<= 1 per node per phase) plus free local MOE lookups.  This
bench quantifies the message and energy savings and attributes them to
message kinds.
"""

from __future__ import annotations

from repro.algorithms.ghs import run_ghs, run_modified_ghs
from repro.experiments.report import format_table
from repro.geometry.points import uniform_points
from repro.mst.quality import same_tree

from conftest import write_artifact

NS = (250, 500, 1000, 2000)


def test_ablation_mghs_report(benchmark):
    def run_grid():
        out = []
        for n in NS:
            pts = uniform_points(n, seed=0)
            out.append((n, run_ghs(pts), run_modified_ghs(pts)))
        return out

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for n, orig, mod in results:
        assert same_tree(orig.tree_edges, mod.tree_edges)
        probes = (
            orig.stats.messages_by_kind.get("TEST", 0)
            + orig.stats.messages_by_kind.get("ACCEPT", 0)
            + orig.stats.messages_by_kind.get("REJECT", 0)
        )
        rows.append(
            (
                n,
                orig.messages,
                mod.messages,
                probes,
                mod.stats.messages_by_kind.get("ANNOUNCE", 0),
                f"{orig.energy:.1f}",
                f"{mod.energy:.1f}",
                f"{orig.energy / mod.energy:.1f}x",
            )
        )
    text = format_table(
        ["n", "GHS msgs", "MGHS msgs", "GHS probes", "MGHS announces",
         "GHS E", "MGHS E", "saving"],
        rows,
    )
    write_artifact("ABL-G", text)

    for n, orig, mod in results:
        assert mod.energy < orig.energy
        assert mod.messages < orig.messages
    # The saving factor grows with n (probes scale with |E| ~ n log n).
    savings = [orig.energy / mod.energy for _, orig, mod in results]
    assert savings[-1] > savings[0]
    benchmark.extra_info["savings"] = savings


def test_time_mghs_n2000(benchmark):
    """Wall-clock of one modified-GHS run at n=2000."""
    pts = uniform_points(2000, seed=0)
    benchmark.pedantic(run_modified_ghs, args=(pts,), rounds=1, iterations=1)
