"""BAL — per-node energy balance: who drains their battery first?

Total energy (the paper's metric) hides hotspots: a sensor network dies
when its *busiest* node does.  This bench reports, per algorithm, the
peak and mean per-node energy and the peak/mean imbalance ratio — a view
the ``energy_by_node`` ledger makes free.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.connt import run_connt
from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_ghs
from repro.algorithms.randnnt import run_randnnt
from repro.experiments.report import format_table
from repro.geometry.points import uniform_points

from conftest import write_artifact

N = 1000


def test_balance_report(benchmark):
    pts = uniform_points(N, seed=0)

    def run_all():
        return [run_ghs(pts), run_eopt(pts), run_randnnt(pts), run_connt(pts)]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for res in results:
        per_node = res.stats.energy_by_node
        mean = float(per_node.mean())
        peak = float(per_node.max())
        rows.append(
            (
                res.name,
                f"{mean * 1000:.3f}",
                f"{peak * 1000:.3f}",
                f"{peak / mean:.1f}x",
                f"{np.count_nonzero(per_node == 0)}",
            )
        )
    text = format_table(
        ["algorithm", "mean/node (mE)", "peak/node (mE)", "imbalance",
         "idle nodes"],
        rows,
    )
    write_artifact("BAL", text)

    by_name = {r.name: r for r in results}
    # EOPT's peak node spends less than GHS's peak node: the optimality is
    # not bought by overloading a hotspot.
    assert by_name["EOPT"].stats.max_node_energy < by_name["GHS"].stats.max_node_energy
    # Co-NNT is the most balanced of all (every node does O(1) work).
    connt = by_name["Co-NNT"].stats
    assert connt.max_node_energy < 20 * connt.energy_total / N
    benchmark.extra_info["peaks"] = {
        r.name: r.stats.max_node_energy for r in results
    }
