"""TIME — round (time-step) complexity of the algorithms.

The paper's focus is energy, but it carefully notes time complexity too
(GHS-style algorithms are not time-optimal; Sec. VIII discusses the time
cost of contention).  This bench measures synchronous rounds across n
and fits the growth: Co-NNT finishes in O(log n) rounds (its probe
phases), the GHS family in O(n)-ish rounds (fragment trees deepen), with
EOPT paying extra rounds for its two steps but far fewer messages.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.theory.scaling import fit_power_law

from conftest import write_artifact


def test_time_report(benchmark, fig3_sweep):
    def build():
        rows = []
        for i, n in enumerate(fig3_sweep.ns):
            rows.append(
                (int(n),)
                + tuple(
                    int(fig3_sweep.rounds[a][i].mean())
                    for a in fig3_sweep.config.algorithms
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["n"] + [f"rounds[{a}]" for a in fig3_sweep.config.algorithms]
    text = format_table(headers, rows)
    write_artifact("TIME", text)

    ns = fig3_sweep.ns
    mask = ns >= 100
    connt_rounds = fig3_sweep.rounds["Co-NNT"].mean(axis=1)
    ghs_rounds = fig3_sweep.rounds["GHS"].mean(axis=1)
    # Co-NNT: essentially flat round count (log-ish; exponent near 0).
    fit_connt = fit_power_law(ns[mask], connt_rounds[mask])
    assert fit_connt.slope < 0.35
    # GHS: rounds grow polynomially with n (fragment-tree depths).
    fit_ghs = fit_power_law(ns[mask], ghs_rounds[mask])
    assert fit_ghs.slope > 0.3
    benchmark.extra_info["slope_connt"] = fit_connt.slope
    benchmark.extra_info["slope_ghs"] = fit_ghs.slope
