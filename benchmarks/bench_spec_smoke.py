#!/usr/bin/env python
"""Spec round-trip smoke: emit specs, execute them, diff against golden.

The ``make spec-smoke`` gate for the runspec layer.  For each smoke
:class:`~repro.runspec.spec.RunSpec` (the GHS family, EOPT and Co-NNT on
one fixed instance, plus a faulted MGHS run):

* the spec is emitted to JSON and reloaded — the loaded spec must equal
  the original exactly (exit code 2 on mismatch: the spec schema broke);
* the loaded spec is executed and its :class:`~repro.runspec.report.RunReport`
  JSON round-trips — headline stats must survive unchanged (exit 2);
* the headline stats must match the committed golden snapshot in
  ``benchmarks/golden/spec_smoke.json`` (exit code 1 on divergence — a
  semantic regression in the engine or a runner, not a schema one).

Results land in ``benchmarks/out/BENCH_spec_smoke.json``.

Usage::

    python benchmarks/bench_spec_smoke.py
    python benchmarks/bench_spec_smoke.py --write-golden

Not a pytest file on purpose: ``make spec-smoke`` calls it directly so
the golden comparison's exit code gates CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.runspec import RunReport, RunSpec, execute  # noqa: E402
from repro.sim.faults import FaultPlan  # noqa: E402

GOLDEN_PATH = REPO / "benchmarks" / "golden" / "spec_smoke.json"
OUT_PATH = REPO / "benchmarks" / "out" / "BENCH_spec_smoke.json"

#: The smoke grid: one fixed instance through every registered family
#: the engine dispatches differently, plus one faulted run so the fault
#: plan survives the spec round trip under execution.
SPECS = (
    RunSpec(algorithm="GHS", n=300, seed=7),
    RunSpec(algorithm="MGHS", n=300, seed=7),
    RunSpec(algorithm="EOPT", n=300, seed=7),
    RunSpec(algorithm="Co-NNT", n=300, seed=7),
    RunSpec(
        algorithm="MGHS",
        n=300,
        seed=7,
        faults=FaultPlan(seed=1, drop_rate=0.1),
    ),
)


def _fail(msg: str) -> None:
    print(f"FATAL: {msg}", file=sys.stderr)
    sys.exit(2)


def _key(spec: RunSpec) -> str:
    return spec.cell + (":faulted" if spec.faults is not None else "")


def _headline(report: RunReport) -> dict:
    res = report.result
    return {
        "energy_total": res.stats.energy_total,
        "messages_total": int(res.stats.messages_total),
        "rounds": int(res.stats.rounds),
        "phases": int(res.phases),
        "n_tree_edges": int(len(res.tree_edges)),
        "dropped": int(res.stats.dropped_total),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--write-golden",
        action="store_true",
        help="(re)write the golden stats snapshot instead of checking it",
    )
    args = ap.parse_args(argv)

    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    rows = {}
    for spec in SPECS:
        # Emit -> reload: the schema must round-trip the spec exactly.
        emitted = OUT_PATH.parent / f"spec_smoke_{_key(spec).replace(':', '_')}.json"
        emitted.write_text(spec.to_json())
        loaded = RunSpec.from_json(emitted.read_text())
        if loaded != spec:
            _fail(f"{_key(spec)}: spec JSON round trip changed the spec")

        t0 = time.perf_counter()
        report = execute(loaded)
        wall = time.perf_counter() - t0

        # Execute -> report round trip: headline stats must survive.
        back = RunReport.from_json(report.to_json())
        if _headline(back) != _headline(report) or back.spec != spec:
            _fail(f"{_key(spec)}: report JSON round trip changed the stats")

        rows[_key(spec)] = {**_headline(report), "wall_s": round(wall, 3)}
        print(
            f"{_key(spec):<24} energy={rows[_key(spec)]['energy_total']:.2f} "
            f"msgs={rows[_key(spec)]['messages_total']} "
            f"rounds={rows[_key(spec)]['rounds']}"
        )

    golden = {
        key: {k: v for k, v in rec.items() if k != "wall_s"}
        for key, rec in rows.items()
    }
    failures = []
    if args.write_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
        print(f"golden written to {GOLDEN_PATH}")
    elif GOLDEN_PATH.exists():
        expected = json.loads(GOLDEN_PATH.read_text())
        for key, stats in golden.items():
            if key in expected and expected[key] != stats:
                failures.append(
                    f"golden divergence for {key}: got {stats}, "
                    f"expected {expected[key]}"
                )
    else:
        print(f"warning: no golden snapshot at {GOLDEN_PATH}; run --write-golden")

    OUT_PATH.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    print(f"results written to {OUT_PATH}")

    if failures:
        for f in failures:
            print("FATAL:", f, file=sys.stderr)
        return 1
    print(f"{len(rows)} specs round-tripped and matched golden")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
