"""MAINT — incremental repair vs full rebuild under node churn.

The paper's intro motivates energy-awareness with dynamics ("topology ...
can change frequently due to mobility or node failures").  This bench
kills an increasing fraction of a built MST's nodes and compares the
energy of repairing the surviving forest against rebuilding from
scratch, plus the quality of the repaired tree.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_modified_ghs
from repro.applications.maintenance import repair_after_failures
from repro.experiments.report import format_table
from repro.geometry.points import uniform_points
from repro.mst.kruskal import kruskal_mst
from repro.mst.quality import tree_cost
from repro.rgg.build import build_rgg

from conftest import write_artifact

N = 1000
FAIL_FRACTIONS = (0.01, 0.05, 0.10, 0.25)


def test_maintenance_report(benchmark):
    pts = uniform_points(N, seed=0)
    base = run_eopt(pts)

    def run_grid():
        rng = np.random.default_rng(1)
        out = []
        for frac in FAIL_FRACTIONS:
            failed = rng.choice(N, size=int(frac * N), replace=False)
            rep = repair_after_failures(pts, base.tree_edges, failed)
            rebuild = run_modified_ghs(pts[rep.extras["survivors"]])
            out.append((frac, rep, rebuild))
        return out

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for frac, rep, rebuild in results:
        sub_pts = pts[rep.extras["survivors"]]
        g = build_rgg(sub_pts, rep.extras["radius"])
        opt, _ = kruskal_mst(g.n, g.edges, g.lengths)
        quality = tree_cost(sub_pts, rep.tree_edges) / tree_cost(sub_pts, opt)
        repair_ghs = rep.stats.energy_by_stage["repair:ghs"]
        rebuild_ghs = rebuild.stats.energy_by_stage["phases"]
        rows.append(
            (
                f"{frac:.0%}",
                rep.extras["initial_fragments"],
                rep.phases,
                f"{repair_ghs:.2f}",
                f"{rebuild_ghs:.2f}",
                f"{rebuild_ghs / max(repair_ghs, 1e-12):.1f}x",
                f"{quality:.4f}",
            )
        )
    text = format_table(
        ["failed", "fragments", "phases", "repair E", "rebuild E",
         "saving", "quality vs opt"],
        rows,
    )
    write_artifact("MAINT", text)

    for frac, rep, rebuild in results:
        repair_ghs = rep.stats.energy_by_stage["repair:ghs"]
        rebuild_ghs = rebuild.stats.energy_by_stage["phases"]
        assert repair_ghs < rebuild_ghs
        sub_pts = pts[rep.extras["survivors"]]
        g = build_rgg(sub_pts, rep.extras["radius"])
        opt, _ = kruskal_mst(g.n, g.edges, g.lengths)
        assert (
            tree_cost(sub_pts, rep.tree_edges)
            <= 1.05 * tree_cost(sub_pts, opt)
        )
