#!/usr/bin/env python
"""MAINT scenario smoke: repair vs rebuild energy on a churn schedule.

The ``make scenario-smoke`` gate for the scenario plane.  One mixed
churn/mobility schedule (crash + join + move per cycle, from
:func:`repro.scenario.mobility.mixed_plan`) is executed through the
ordinary runspec engine twice — once with ``repair`` checkpoints
(incremental reconnection of the surviving forest) and once with
``rebuild`` checkpoints (from-scratch MGHS every cycle):

* both specs must survive a JSON round trip exactly (exit code 2: the
  scenario schema broke);
* both reports must round-trip with headline stats intact (exit 2);
* incremental repair must spend *less* maintenance energy than the
  from-scratch rebuild of the very same schedule (exit 2 — this is the
  paper-motivated point of the subsystem);
* the headline stats must match ``benchmarks/golden/maintenance.json``
  (exit code 1 on divergence — a semantic regression in the scheduler,
  the recovery driver, or the kernels).

Results land in ``benchmarks/out/BENCH_maintenance.json``.

Usage::

    python benchmarks/bench_maintenance.py --quick   # the make gate
    python benchmarks/bench_maintenance.py           # bigger instance
    python benchmarks/bench_maintenance.py --quick --write-golden

Not a pytest file on purpose: ``make scenario-smoke`` calls it directly
so the golden comparison's exit code gates CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.runspec import RunReport, RunSpec, execute  # noqa: E402
from repro.scenario.mobility import mixed_plan  # noqa: E402

GOLDEN_PATH = REPO / "benchmarks" / "golden" / "maintenance.json"
OUT_PATH = REPO / "benchmarks" / "out" / "BENCH_maintenance.json"

#: (mode, n, seed, cycles) — quick is the make-verify gate, full is the
#: same schedule shape on a bigger instance for by-hand runs.
CONFIGS = {
    "quick": dict(n=60, seed=7, cycles=3),
    "full": dict(n=300, seed=7, cycles=4),
}


def _fail(msg: str) -> None:
    print(f"FATAL: {msg}", file=sys.stderr)
    sys.exit(2)


def _headline(report: RunReport) -> dict:
    res = report.result
    ex = res.extras
    return {
        "energy_total": res.stats.energy_total,
        "messages_total": int(res.stats.messages_total),
        "rounds": int(res.stats.rounds),
        "n_cycles": int(ex["n_cycles"]),
        "n_alive": int(ex["n_alive"]),
        "n_tree_edges": int(len(res.tree_edges)),
        "build_energy": ex["build_energy"],
        "repair_energy": ex["repair_energy"],
        "rebuild_energy": ex["rebuild_energy"],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small gate config")
    ap.add_argument(
        "--write-golden",
        action="store_true",
        help="(re)write the golden stats snapshot instead of checking it",
    )
    args = ap.parse_args(argv)
    mode = "quick" if args.quick else "full"
    cfg = CONFIGS[mode]

    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    rows = {}
    for kind in ("repair", "rebuild"):
        plan = mixed_plan(
            cfg["n"], seed=cfg["seed"], cycles=cfg["cycles"], checkpoint=kind
        )
        spec = RunSpec(
            algorithm="MAINT", n=cfg["n"], seed=cfg["seed"], scenario=plan
        )
        loaded = RunSpec.from_json(spec.to_json())
        if loaded != spec:
            _fail(f"{kind}: scenario spec JSON round trip changed the spec")

        t0 = time.perf_counter()
        report = execute(loaded)
        wall = time.perf_counter() - t0

        back = RunReport.from_json(report.to_json())
        if _headline(back) != _headline(report) or back.spec != spec:
            _fail(f"{kind}: report JSON round trip changed the stats")

        key = f"{mode}:{kind}"
        rows[key] = {**_headline(report), "wall_s": round(wall, 3)}
        h = rows[key]
        print(
            f"{key:<14} energy={h['energy_total']:.2f} "
            f"msgs={h['messages_total']} rounds={h['rounds']} "
            f"maint_E={h[f'{kind}_energy']:.2f}"
        )

    # The point of the subsystem: on the same schedule, incremental
    # repair must beat the from-scratch rebuild on maintenance energy.
    rep = rows[f"{mode}:repair"]["repair_energy"]
    reb = rows[f"{mode}:rebuild"]["rebuild_energy"]
    if not rep < reb:
        _fail(
            f"incremental repair ({rep:.2f}) did not beat full rebuild "
            f"({reb:.2f}) on maintenance energy"
        )
    print(f"repair/rebuild maintenance energy: {rep:.2f} / {reb:.2f} "
          f"({reb / max(rep, 1e-12):.2f}x saving)")

    golden = {
        key: {k: v for k, v in rec.items() if k != "wall_s"}
        for key, rec in rows.items()
    }
    failures = []
    if args.write_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        merged = (
            json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
        )
        merged.update(golden)
        GOLDEN_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"golden written to {GOLDEN_PATH}")
    elif GOLDEN_PATH.exists():
        expected = json.loads(GOLDEN_PATH.read_text())
        for key, stats in golden.items():
            if key in expected and expected[key] != stats:
                failures.append(
                    f"golden divergence for {key}: got {stats}, "
                    f"expected {expected[key]}"
                )
    else:
        print(f"warning: no golden snapshot at {GOLDEN_PATH}; run --write-golden")

    OUT_PATH.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    print(f"results written to {OUT_PATH}")

    if failures:
        for f in failures:
            print("FATAL:", f, file=sys.stderr)
        return 1
    print(f"{len(rows)} scenario runs round-tripped and matched golden")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
