#!/usr/bin/env python
"""Lint gate for ``make lint``: ruff when installed, AST fallback otherwise.

The repo's lint configuration lives in ``pyproject.toml`` under
``[tool.ruff]``; when the ``ruff`` binary is available this script simply
delegates to ``ruff check``.  Containers without ruff (the pinned CI
image ships only the runtime deps) fall back to a small AST-based subset
that catches the failure modes that actually bite:

* files that do not parse (syntax errors);
* unused module-level imports (``F401``-lite; ``__init__.py`` re-export
  files and ``# noqa`` lines are exempt).

Exit code 0 when clean, 1 with findings — wired into ``make verify``.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TARGETS = ("src", "tests", "benchmarks", "tools", "examples")


def _python_files() -> list[Path]:
    files = []
    for target in TARGETS:
        root = REPO / target
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
    return files


def _run_ruff() -> int:
    print("lint: ruff check", " ".join(TARGETS))
    return subprocess.call(
        ["ruff", "check", *(t for t in TARGETS if (REPO / t).is_dir())],
        cwd=REPO,
    )


def _imported_names(node: ast.Import | ast.ImportFrom) -> list[str]:
    """The local binding names an import statement introduces."""
    names = []
    for alias in node.names:
        if alias.name == "*":
            continue
        if alias.asname is not None:
            names.append(alias.asname)
        elif isinstance(node, ast.Import):
            names.append(alias.name.split(".")[0])
        else:
            names.append(alias.name)
    return names


def _used_names(tree: ast.AST) -> set[str]:
    """Every identifier the module reads (names, plus ``__all__`` strings)."""
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # ``a.b.c`` reads ``a``; the Name child covers it, but keep
            # the attribute chain's string form for __all__-style checks.
            pass
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.add(node.value)
    return used


def _check_file(path: Path) -> list[str]:
    rel = path.relative_to(REPO)
    text = path.read_text()
    try:
        tree = ast.parse(text, filename=str(rel))
    except SyntaxError as exc:
        return [f"{rel}:{exc.lineno}: syntax error: {exc.msg}"]

    findings = []
    if path.name != "__init__.py":
        lines = text.splitlines()
        used = _used_names(tree)
        for node in tree.body:
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if isinstance(node, ast.ImportFrom) and node.module == "__future__":
                continue
            line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
            if "noqa" in line:
                continue
            for name in _imported_names(node):
                if name not in used:
                    findings.append(
                        f"{rel}:{node.lineno}: unused import {name!r}"
                    )
    return findings


def _run_fallback() -> int:
    print("lint: ruff not installed; AST fallback (syntax + unused imports)")
    findings = []
    for path in _python_files():
        findings.extend(_check_file(path))
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


def main() -> int:
    if shutil.which("ruff"):
        return _run_ruff()
    return _run_fallback()


if __name__ == "__main__":
    raise SystemExit(main())
