# Convenience targets; see ROADMAP.md for the tier definitions.

PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify lint perf-smoke bench bench-planes bench-scale chaos trace-smoke spec-smoke scenario-smoke cache-smoke serve-smoke fuzz-smoke fuzz-deep golden-regen

# Tier 1: lint gate plus the full unit/property suite (must stay green),
# plus the run-cache smoke so a cache regression cannot land silently,
# plus the serve smoke (HTTP byte-identity; see docs/architecture.md),
# plus the bounded fuzz smoke (deterministic; see docs/fuzzing.md),
# plus the scenario smoke (repair-vs-rebuild golden; see docs/scenarios.md).
verify: lint
	$(PY) -m pytest -x -q
	$(PY) benchmarks/bench_run_cache.py --quick
	$(MAKE) serve-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) scenario-smoke

# Bounded, derandomized stateful fuzzing pass: replay the checked-in
# counterexample corpus, then a small budget of fresh examples per
# machine.  Deterministic (derandomize=True, fixed seed), so a red run
# is a real regression, never flake.
fuzz-smoke:
	$(PY) -m repro fuzz --machine all --examples 12 --steps 25 --corpus tests/corpus

# Longer fuzz campaign across several seed offsets — run before merging
# changes to the retry layer, fault plane, or recovery driver.  On
# failure the shrunk counterexample lands in fuzz-failure/ as
# scenario.json + spec.json + trace-diff; see docs/fuzzing.md.
fuzz-deep:
	for s in 0 1 2 3; do \
		$(PY) -m repro fuzz --machine all --examples 75 --steps 50 \
			--seed $$s --corpus tests/corpus || exit 1; \
	done

# Lint: ruff (configured in pyproject.toml) when installed, an AST
# fallback (syntax errors + unused imports) otherwise.
lint:
	$(PY) tools/lint.py

# Tier 2: kernel hot-path perf smoke — times the optimized kernel against
# the frozen legacy kernel and fails loudly if stats diverge from the
# golden snapshot.  Writes benchmarks/out/BENCH_kernel.json.
perf-smoke:
	$(PY) benchmarks/bench_kernel_hotpath.py --quick
	$(PY) benchmarks/bench_flood_planes.py --quick
	$(PY) benchmarks/bench_scale.py --gate

# Full kernel benchmark (n=2000, best-of-3).
bench:
	$(PY) benchmarks/bench_kernel_hotpath.py

# Full flood-plane benchmark (n=2000, best-of-3, >=3x flood-stage gate).
bench-planes:
	$(PY) benchmarks/bench_flood_planes.py

# Turbo-backend scaling run: nodes/sec + peak RSS at n up to 10^6 through
# the chunked instance layout, plus the >=10x turbo-vs-legacy gate.
# Writes benchmarks/out/BENCH_scale.json.  The million-node cell takes
# minutes; use `benchmarks/bench_scale.py --quick` for the n=10^4 cut.
bench-scale:
	$(PY) benchmarks/bench_scale.py

# Fault-plane chaos gate: the chaos test suite plus the resilience
# benchmark smoke (p=0 bit-identical, exact MST at every drop rate).
# Writes benchmarks/out/BENCH_faults.json.
chaos:
	$(PY) -m pytest tests/test_chaos.py tests/test_faults.py -x -q
	$(PY) benchmarks/bench_faults.py --quick

# Trace-plane smoke: record a small MGHS trace, JSONL round-trip it,
# self-diff against a legacy-kernel run, and re-check the
# zero-cost-when-off contract.  See docs/observability.md.
trace-smoke:
	$(PY) benchmarks/bench_trace_smoke.py

# Runspec smoke: emit specs as JSON, reload, execute through the one
# engine, JSON round-trip the reports, and diff the headline stats
# against benchmarks/golden/spec_smoke.json.  See docs/architecture.md.
spec-smoke:
	$(PY) benchmarks/bench_spec_smoke.py

# Scenario-plane smoke: one mixed churn schedule through the MAINT
# workload with repair vs rebuild checkpoints — spec/report JSON round
# trips, the repair<rebuild maintenance-energy gate, and the golden
# stats diff (benchmarks/golden/maintenance.json).  See docs/scenarios.md.
scenario-smoke:
	$(PY) benchmarks/bench_maintenance.py --quick

# Run-cache smoke: duplicated sweep through the process backend against
# a throwaway store — cold/warm timing (>=20x warm gate), byte-identity
# of cached vs fresh reports, per-worker RSS with and without the SHM
# fabric.  Writes benchmarks/out/BENCH_cache.json.  See docs/performance.md.
cache-smoke:
	$(PY) benchmarks/bench_run_cache.py --quick

# Serve smoke: boot `repro serve` against a throwaway cache, golden spec
# submitted cold then warm across a restart (second response must be a
# store hit, byte-identical — exit 2 on divergence), plus an 8-client
# singleflight race.  Writes benchmarks/out/BENCH_serve.json.
serve-smoke:
	$(PY) benchmarks/bench_serve_smoke.py --quick

# Rebuild the golden stats snapshots deliberately (full configs).  The
# goldens gate the benchmarks above; never hand-edit the JSON — rerun
# this after an *intentional* semantics change and review the diff.
golden-regen:
	$(PY) benchmarks/bench_kernel_hotpath.py --write-golden
	$(PY) benchmarks/bench_flood_planes.py --write-golden
	$(PY) benchmarks/bench_spec_smoke.py --write-golden
	$(PY) benchmarks/bench_scale.py --quick --write-golden
	$(PY) benchmarks/bench_run_cache.py --quick --write-golden
	$(PY) benchmarks/bench_maintenance.py --quick --write-golden
